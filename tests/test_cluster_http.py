"""The asyncio HTTP edge: session API, backpressure, chaos over HTTP."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cluster import (
    ClusterApiError,
    ClusterBusyError,
    ClusterClient,
    ClusterHttpServer,
    build_cluster,
)
from repro.queries.workload import partition_count_batch
from repro.storage.wavelet_store import WaveletStorage


@pytest.fixture(scope="module")
def storage():
    rng = np.random.default_rng(88)
    data = rng.poisson(2.0, size=(32, 32)).astype(np.float64)
    return WaveletStorage.build(data, wavelet="db2")


def make_batch(seed: int):
    return partition_count_batch(
        (32, 32), (3, 3), rng=np.random.default_rng(seed)
    )


@pytest.fixture
def edge(storage, tmp_path):
    router = build_cluster(
        storage, tmp_path / "edge.pages", 2,
        process_shards=False, buffer_pages=16,
    )
    server = ClusterHttpServer(router, port=0).start_in_thread()
    client = ClusterClient("127.0.0.1", server.port, timeout=30.0)
    yield server, client
    client.close()
    server.close()


class TestSessionApi:
    def test_submit_advance_poll_cancel_round_trip(self, edge, storage):
        server, client = edge
        batch = make_batch(11)
        sid = client.submit(batch)
        assert sid in client.sessions()

        out = client.advance(sid, 20)
        assert out["gained"] == 20
        snap = client.poll(sid)
        assert snap["steps_taken"] == 20 and not snap["is_exact"]

        # The HTTP snapshot is bit-equal to the router's own poll —
        # JSON floats round-trip exactly.
        direct = server.router.poll(sid)
        np.testing.assert_array_equal(snap["estimates"], direct.estimates)
        assert snap["worst_case_bound"] == direct.worst_case_bound

        while not snap["is_exact"]:
            if client.advance(sid, 64)["gained"] == 0:
                break
            snap = client.poll(sid)
        assert snap["is_exact"] and snap["remaining"] == 0

        client.cancel(sid)
        assert client.sessions() == []
        with pytest.raises(ClusterApiError) as err:
            client.poll(sid)
        assert err.value.status == 404

    def test_penalty_switch_and_retry_endpoints(self, edge):
        _, client = edge
        sid = client.submit(make_batch(13), penalty={"kind": "lp", "p": 1.0})
        client.advance(sid, 10)
        snap = client.set_penalty(
            sid, {"kind": "cursored_sse", "high_priority": [0, 1]}
        )
        assert snap["steps_taken"] == 10
        assert client.retry_skipped(sid) == 0  # healthy session
        client.cancel(sid)

    def test_submit_validates_domain_over_http(self, edge):
        _, client = edge
        with pytest.raises(ClusterApiError) as err:
            client.submit({
                "queries": [
                    {"kind": "count", "rect": [[0, 99], [0, 15]],
                     "label": "huge"},
                ]
            })
        assert err.value.status == 400
        assert "huge" in err.value.api_message

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"queries": []},
            {"queries": [{"kind": "median", "rect": [[0, 3], [0, 3]]}]},
            {"queries": [{"kind": "sum", "rect": [[0, 3], [0, 3]]}]},
            {"queries": [{"kind": "count", "rect": "nope"}]},
        ],
    )
    def test_malformed_submissions_are_400(self, edge, payload):
        _, client = edge
        with pytest.raises(ClusterApiError) as err:
            client.submit(payload)
        assert err.value.status == 400

    def test_unknown_routes_and_methods(self, edge):
        _, client = edge
        with pytest.raises(ClusterApiError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404
        with pytest.raises(ClusterApiError) as err:
            client._request("PUT", "/sessions")
        assert err.value.status == 405


class TestObservability:
    def test_metrics_costs_and_healthz(self, edge):
        _, client = edge
        sid = client.submit(make_batch(17))
        client.advance(sid, 12)
        text = client.metrics_text()
        assert "repro_cluster_sessions_submitted_total" in text
        assert "repro_cluster_shard_up" in text
        costs = client.costs()
        assert sid in costs
        report = client.session_costs(sid)
        assert report["counters"]["deliveries"] >= 12
        health = client.healthz()
        assert [s["up"] for s in health["shards"]] == [True, True]
        assert health["partitioner"]["kind"] == "hash"
        assert health["max_inflight"] == 32
        client.cancel(sid)


class TestBackpressure:
    def test_admission_control_rejects_with_retry_after(
        self, storage, tmp_path
    ):
        router = build_cluster(
            storage, tmp_path / "bp.pages", 2,
            process_shards=False, buffer_pages=16,
        )
        # max_inflight=0: every session-facing request is shed at the
        # door — the deterministic way to exercise the 429 path.
        server = ClusterHttpServer(
            router, port=0, max_inflight=0, retry_after=2.5
        ).start_in_thread()
        client = ClusterClient("127.0.0.1", server.port)
        try:
            with pytest.raises(ClusterBusyError) as err:
                client.submit(make_batch(19))
            assert err.value.status == 429
            assert err.value.retry_after == 2.5
            # Observability bypasses admission: still visible when full.
            assert client.healthz()["shards"]
            assert "repro_cluster_http_rejected_total" in client.metrics_text()
        finally:
            client.close()
            server.close()

    def test_shard_blackout_degrades_over_http(self, storage, tmp_path):
        chaos = {
            "seed": 23,
            "transient_rate": 0.0,
            "blackout_keys": list(range(0, 1024, 3)),
            "max_attempts": 2,
        }
        router = build_cluster(
            storage, tmp_path / "deg.pages", 2,
            process_shards=False, buffer_pages=16,
            chaos=chaos, chaos_shard=0,
        )
        server = ClusterHttpServer(router, port=0).start_in_thread()
        client = ClusterClient("127.0.0.1", server.port)
        try:
            sid = client.submit(make_batch(29))
            while client.advance(sid, 64)["gained"]:
                pass
            snap = client.poll(sid)
            assert snap["degraded"] and snap["skipped_count"] > 0
            assert not snap["is_exact"]
            assert 0.0 < snap["worst_case_bound"] < float("inf")
        finally:
            client.close()
            server.close()


class TestWireFormat:
    def test_bad_json_body_is_400_not_500(self, edge):
        server, _ = edge
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request(
            "POST", "/sessions", body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        body = json.loads(response.read())
        assert response.status == 400
        assert "bad JSON" in body["error"]
        conn.close()

    def test_keep_alive_serves_multiple_requests(self, edge):
        server, _ = edge
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        for _ in range(3):
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            assert response.status == 200
            response.read()
        conn.close()
