"""Cross-batch I/O sharing: one retrieval schedule over many sessions.

Observation 1 merges the supports of *one* batch so each coefficient is
fetched once.  A service runs many batches at once, and their supports
overlap too — whole-domain partitions share every coarse wavelet key.  The
:class:`SharedRetrievalScheduler` extends the merge across sessions:

* every live :class:`~repro.core.session.ProgressiveSession` contributes
  its pending ``(key, importance)`` pairs to one global heap;
* the scheduler pops the globally most important coefficient — the max of
  the per-session importances (Definition 3), which is the natural batch
  importance of the union workload under a max-combined penalty;
* the coefficient is fetched from the store **once** and delivered to
  every session whose master list contains it
  (:meth:`ProgressiveSession.deliver`), so concurrent batches never pay
  for the same key twice;
* fetched coefficients stay in a coefficient cache while any live session
  holds them, so a session submitted later gets overlapping keys served
  without new I/O (the Storyboard-style reuse of precomputed state).

The heap is lazy: entries invalidated by a delivery, a penalty switch or a
cancellation are skipped on pop instead of being removed eagerly, which
keeps every mutation O(log n).
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.session import ProgressiveSession
from repro.obs import REGISTRY, MetricRegistry, span
from repro.obs.ledger import active_stage, activate as _charge_to, note
from repro.storage.resilient import RetrievalError

#: Distinguishes scheduler instances inside the process-global registry.
_INSTANCE_IDS = itertools.count()


class SchedulerMetrics:
    """Counters for the shared retrieval schedule.

    Since the telemetry refactor this is a read-only *view* over the
    ``repro.obs`` metric registry (the ``repro_scheduler_*_total`` series
    with this scheduler's ``scheduler=`` label) — the attribute surface
    is unchanged, so existing callers keep working, but the registry is
    the single source of truth and every mutation is one of its atomic
    (lock-guarded) operations.

    Attributes
    ----------
    retrievals:
        Coefficient fetches issued against the store — the paper's cost.
    deliveries:
        Coefficient applications into sessions.  With sharing, deliveries
        exceed retrievals; the surplus is I/O another session already paid.
    cache_deliveries:
        Deliveries served from the coefficient cache (no fetch at all:
        the key was retrieved for a session that is still live).
    skipped_keys:
        Keys the schedule marked unavailable after the store abandoned
        their fetch (retries and circuit breaker exhausted).  Affected
        sessions degrade — their Theorem-1 bounds stay valid — instead
        of crashing the heap loop.
    """

    def __init__(self, registry: MetricRegistry, instance: str) -> None:
        self._instance = instance
        self._retrievals = registry.counter(
            "repro_scheduler_retrievals_total",
            "Coefficient fetches issued against the store (the paper's cost)",
            ("scheduler",),
        )
        self._deliveries = registry.counter(
            "repro_scheduler_deliveries_total",
            "Coefficient applications into sessions",
            ("scheduler",),
        )
        self._cache_deliveries = registry.counter(
            "repro_scheduler_cache_deliveries_total",
            "Deliveries served from the cross-session coefficient cache",
            ("scheduler",),
        )
        self._skipped_keys = registry.counter(
            "repro_scheduler_skipped_keys_total",
            "Keys marked unavailable after the store abandoned their fetch",
            ("scheduler",),
        )

    @property
    def retrievals(self) -> int:
        return int(self._retrievals.value(scheduler=self._instance))

    @property
    def deliveries(self) -> int:
        return int(self._deliveries.value(scheduler=self._instance))

    @property
    def cache_deliveries(self) -> int:
        return int(self._cache_deliveries.value(scheduler=self._instance))

    @property
    def skipped_keys(self) -> int:
        return int(self._skipped_keys.value(scheduler=self._instance))

    @property
    def shared_deliveries(self) -> int:
        """Deliveries that did not require their own fetch."""
        return self.deliveries - self.retrievals

    @property
    def shared_hit_ratio(self) -> float:
        """Fraction of deliveries that re-used another session's fetch.

        Defined as 0.0 on a freshly started service (``deliveries == 0``)
        rather than NaN/raising — dashboards render it immediately.
        """
        deliveries = self.deliveries
        return self.shared_deliveries / deliveries if deliveries else 0.0


@dataclass
class _Registration:
    session: ProgressiveSession
    epoch: int = 0
    delivered: int = field(default=0)


class SharedRetrievalScheduler:
    """A global biggest-B schedule over many progressive sessions.

    Thread-safe: every public method holds the scheduler lock, so client
    threads can drive different sessions concurrently against one store.
    """

    def __init__(self, store, registry: MetricRegistry | None = None) -> None:
        #: The shared coefficient store (a CountingStore or a
        #: PagedCoefficientStore — anything with ``fetch``).
        self.store = store
        self.registry = REGISTRY if registry is None else registry
        self._instance = str(next(_INSTANCE_IDS))
        self.metrics = SchedulerMetrics(self.registry, self._instance)
        self._live_sessions = self.registry.gauge(
            "repro_scheduler_live_sessions",
            "Sessions currently registered with the shared schedule",
            ("scheduler",),
        )
        self._live_sessions.set(0, scheduler=self._instance)
        self._fetch_seconds = self.registry.histogram(
            "repro_scheduler_fetch_seconds",
            "Wall-clock latency of single-coefficient store fetches",
        )
        self._advance_seconds = self.registry.histogram(
            "repro_scheduler_advance_seconds",
            "Wall-clock latency of advance_session calls",
        )
        self._lock = threading.RLock()
        self._heap: list[tuple[float, int, int, int]] = []
        self._registrations: dict[int, _Registration] = {}
        self._interest: dict[int, set[int]] = {}
        self._coefficients: dict[int, float] = {}
        self._ids = itertools.count()

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def register(self, session: ProgressiveSession) -> int:
        """Add a live session; returns its scheduler id."""
        with self._lock:
            sid = next(self._ids)
            reg = _Registration(session)
            self._registrations[sid] = reg
            keys, _ = session.pending()
            for key in keys.tolist():
                self._interest.setdefault(key, set()).add(sid)
            self._push_pending(sid, reg)
            self._live_sessions.inc(scheduler=self._instance)
            return sid

    def deregister(self, sid: int) -> None:
        """Drop a session; cached keys nobody else holds are released."""
        with self._lock:
            reg = self._registrations.pop(sid, None)
            if reg is None:
                return
            self._live_sessions.dec(scheduler=self._instance)
            for key in list(self._interest):
                holders = self._interest[key]
                holders.discard(sid)
                if not holders:
                    del self._interest[key]
                    self._coefficients.pop(key, None)

    def reprioritize(self, sid: int) -> None:
        """Re-seed a session's heap entries after a penalty switch."""
        with self._lock:
            reg = self._registrations[sid]
            reg.epoch += 1
            self._push_pending(sid, reg)

    @property
    def live_sessions(self) -> int:
        with self._lock:
            return len(self._registrations)

    # ------------------------------------------------------------------
    # The shared schedule
    # ------------------------------------------------------------------

    def step(self) -> int | None:
        """Serve the globally most important pending coefficient.

        Fetches the coefficient once (or reads it from the coefficient
        cache) and delivers it to every session whose master list still
        needs it.  Returns the key served, or None when no session has
        pending work.
        """
        with self._lock:
            while self._heap:
                _, key, sid, epoch = heapq.heappop(self._heap)
                reg = self._registrations.get(sid)
                if reg is None or reg.epoch != epoch:
                    continue  # cancelled session or stale priority
                if not reg.session.is_pending(key):
                    continue  # already delivered through another pop
                return self._serve(key)
            return None

    def peek(self) -> tuple[float, int] | None:
        """``(importance, key)`` of the entry :meth:`step` would serve next.

        Prunes stale heap entries (cancelled sessions, re-prioritized
        epochs, already-delivered keys) on the way, so the answer is the
        live maximum.  Returns None when no session has pending work.
        The cluster router merges shard schedules on exactly this view:
        each shard worker exposes its scheduler's top, and the router
        always serves the globally largest ``(importance, -key)``.
        """
        with self._lock:
            while self._heap:
                neg_iota, key, sid, epoch = self._heap[0]
                reg = self._registrations.get(sid)
                if (
                    reg is None
                    or reg.epoch != epoch
                    or not reg.session.is_pending(key)
                ):
                    heapq.heappop(self._heap)
                    continue
                return (-neg_iota, key)
            return None

    def advance_session(self, sid: int, k: int = 1, deadline: float | None = None) -> int:
        """Run shared steps until session ``sid`` gains ``k`` coefficients.

        Other sessions receive every popped coefficient they need along
        the way — that is the point.  Returns the number of coefficients
        the target session actually gained (less than ``k`` at
        exhaustion, when the remaining keys are unavailable, or once the
        wall-clock ``deadline`` — seconds for this call — elapses).
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        with self._lock, span("scheduler.advance", sid=sid, k=k):
            t0 = time.perf_counter()
            session = self._registrations[sid].session
            start = session.steps_taken
            # The driving session pays for the schedule it requested —
            # "schedule" wall time (inclusive of the nested "fetch"
            # stages), the store fetches, and any resilient-store retries
            # — even though other sessions receive coefficients along the
            # way; their accounts are charged deliveries/cache hits as the
            # coefficients land.
            with _charge_to(session.costs), session.costs.stage("schedule"):
                while session.steps_taken - start < k and not session.is_exact:
                    if deadline is not None and time.perf_counter() - t0 >= deadline:
                        break
                    if self.step() is None:
                        break
            self._advance_seconds.observe(time.perf_counter() - t0)
            return session.steps_taken - start

    def drain(self) -> int:
        """Serve until every live session is exact; returns steps served."""
        with self._lock:
            served = 0
            while self.step() is not None:
                served += 1
            return served

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _push_pending(self, sid: int, reg: _Registration) -> None:
        keys, importance = reg.session.pending()
        epoch = reg.epoch
        for key, iota in zip(keys.tolist(), importance.tolist()):
            heapq.heappush(self._heap, (-float(iota), int(key), sid, epoch))

    def _serve(self, key: int) -> int:
        instance = self._instance
        if key in self._coefficients:
            coefficient = self._coefficients[key]
            fetched = False
        else:
            try:
                with span("scheduler.fetch", key=key), active_stage("fetch"):
                    t0 = time.perf_counter()
                    coefficient = float(self.store.fetch(np.array([key]))[0])
                    self._fetch_seconds.observe(time.perf_counter() - t0)
                note(retrievals=1)
            except RetrievalError:
                # The store gave up on this key (retries and breaker
                # exhausted).  Mark it unavailable in every interested
                # session — they degrade with a still-valid Theorem-1
                # bound — and keep serving the rest of the schedule.
                self._skip_key(key, instance)
                return key
            self.metrics._retrievals.inc(scheduler=instance)
            fetched = True
            # Cache while any live session holds the key, so overlapping
            # batches submitted later reuse the fetch without I/O.
            self._coefficients[key] = coefficient
        deliveries = cache_deliveries = 0
        for sid in self._interest.get(key, ()):
            reg = self._registrations.get(sid)
            if reg is None:
                continue
            if reg.session.deliver(key, coefficient):
                deliveries += 1
                reg.delivered += 1
                if not fetched:
                    cache_deliveries += 1
                    # The receiving session got the key without any I/O:
                    # a cross-session cache hit on *its* account.
                    reg.session.costs.add(cache_hits=1)
        if deliveries:
            self.metrics._deliveries.inc(deliveries, scheduler=instance)
        if cache_deliveries:
            self.metrics._cache_deliveries.inc(cache_deliveries, scheduler=instance)
        return key

    def _skip_key(self, key: int, instance: str) -> None:
        skipped = 0
        for sid in self._interest.get(key, ()):
            reg = self._registrations.get(sid)
            if reg is not None and reg.session.skip(key):
                skipped += 1
        if skipped:
            self.metrics._skipped_keys.inc(scheduler=instance)

    def delivered_count(self, sid: int) -> int:
        """Coefficients delivered into session ``sid`` by this scheduler."""
        with self._lock:
            return self._registrations[sid].delivered
