"""The concurrent progressive query service layer.

One :class:`~repro.service.server.ProgressiveQueryService` serves many
concurrent clients over a single coefficient store (in-memory or the
paged disk tier in :mod:`repro.storage.paged`).  A
:class:`~repro.service.scheduler.SharedRetrievalScheduler` merges the
retrieval schedules of every live session into one global importance heap
— the cross-batch generalization of the paper's Observation 1 — so
overlapping batches fetch each shared coefficient exactly once.

See ``docs/SERVICE.md`` for the architecture and
``examples/concurrent_dashboards.py`` / ``repro serve-demo`` for a
multi-threaded demonstration of the sharing savings.
"""

from repro.service.scheduler import SchedulerMetrics, SharedRetrievalScheduler
from repro.service.server import (
    ProgressiveQueryService,
    ServiceMetrics,
    SessionSnapshot,
)

__all__ = [
    "ProgressiveQueryService",
    "SchedulerMetrics",
    "ServiceMetrics",
    "SessionSnapshot",
    "SharedRetrievalScheduler",
]
