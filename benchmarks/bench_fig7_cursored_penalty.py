"""FIG7: progressive *cursored* SSE under the same two progressions.

Paper (Figure 7): the complement of Figure 6 — plotting the normalized
cursored SSE of the same two trials, where the cursored optimizer wins.

The provable content (Theorems 1-2): the cursored-optimized order minimizes
the worst-case and expected cursored penalty of the unretrieved
coefficients at every step, and retrieves the cursor-relevant importance
mass strictly faster.  This bench prints the observed normalized cursored
SSE series and asserts those theorem-level facts plus the cursor-mass
speedup; the per-instance magnitude of the observed gap is data-dependent
(see EXPERIMENTS.md for why the paper's dataset shows a larger one).
"""

from __future__ import annotations

import numpy as np

from repro.core.batch import BatchBiggestB
from repro.core.metrics import normalized_penalty_curve
from repro.core.penalties import CursoredSsePenalty

from bench_fig6_sse_penalty import CURSOR, WEIGHT, _remaining


def test_fig7_normalized_cursored_sse(section6, report, benchmark):
    batch = section6.batch
    cursored = CursoredSsePenalty(batch.size, high_priority=CURSOR, high_weight=WEIGHT)

    ev_sse = section6.evaluator
    ev_cur = BatchBiggestB(
        section6.storage,
        batch,
        penalty=cursored,
        rewrites=ev_sse.rewrites,
        plan=ev_sse.plan,
    )

    master = ev_sse.master_list_size
    cks = np.unique(np.geomspace(1, master, 18).astype(int))

    def progressions():
        _, a = ev_sse.run_progressive(cks)
        _, b = ev_cur.run_progressive(cks)
        return a, b

    snaps_sse, snaps_cur = benchmark.pedantic(progressions, rounds=1, iterations=1)
    curve_sse = normalized_penalty_curve(cursored, snaps_sse, section6.exact)
    curve_cur = normalized_penalty_curve(cursored, snaps_cur, section6.exact)

    lines = [f"{'retrieved':>10} {'SSE-optimized':>15} {'cursored-optimized':>20}"]
    for b, a, c in zip(cks, curve_sse, curve_cur):
        lines.append(f"{int(b):>10} {a:>15.3e} {c:>20.3e}")
    report(
        "FIG7 normalized cursored SSE for two progressions (paper Figure 7)", lines
    )

    # Theorem-level dominance of the cursored optimizer on its own metric.
    iota_cur = ev_cur.importance
    for b in (128, 1024, master // 4, master // 2):
        own_sum, own_max = _remaining(iota_cur, ev_cur.order, b)
        cross_sum, cross_max = _remaining(iota_cur, ev_sse.order, b)
        assert own_sum <= cross_sum * (1 + 1e-12)
        assert own_max <= cross_max * (1 + 1e-12)

    # The cursored order serves the cursor faster: at every checkpoint it
    # has retrieved at least as much cursor-relevant importance mass.
    plan = ev_sse.plan
    mask = np.isin(plan.entry_qid, np.asarray(CURSOR))
    cursor_iota = np.bincount(
        plan.entry_key_pos[mask],
        weights=plan.entry_val[mask] ** 2,
        minlength=plan.num_keys,
    )
    for b in (128, 512, 2048, 8192):
        got_cur = float(cursor_iota[ev_cur.order[:b]].sum())
        got_sse = float(cursor_iota[ev_sse.order[:b]].sum())
        assert got_cur >= got_sse * (1 - 1e-9)

    # Both trials end exact.
    assert curve_sse[-1] < 1e-15
    assert curve_cur[-1] < 1e-15
