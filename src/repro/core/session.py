"""Interactive progressive sessions on top of Batch-Biggest-B.

The paper's user stories (Section 4) are interactive: a dashboard renders
progressive estimates, the user scrolls (moving the cursor), pauses, or
decides the current accuracy suffices.  :class:`ProgressiveSession` wraps
the Figure-1 loop with exactly that control surface:

* :meth:`advance` retrieves the next ``k`` most important coefficients;
* :meth:`set_penalty` re-weighs the *remaining* retrievals under a new
  penalty (e.g. the cursor moved) without discarding progress — the already
  retrieved coefficients stay retrieved, the unretrieved ones are re-ranked
  by the new importance function, which is exactly how Batch-Biggest-B
  would have continued had the new penalty been supplied at that point;
* :meth:`run_until` advances until the Theorem-1 worst-case bound or an
  observed-estimate predicate is satisfied;
* :meth:`deliver` applies a coefficient that was retrieved *elsewhere* —
  the hook :class:`~repro.service.scheduler.SharedRetrievalScheduler` uses
  to share one retrieval across every concurrent session that needs it.

The session never retrieves a coefficient twice, whether it fetched the
coefficient itself or received it from a scheduler.
"""

from __future__ import annotations

import heapq
from typing import Callable

import numpy as np

from repro.core.penalties import Penalty, SsePenalty
from repro.core.plan import QueryPlan
from repro.obs import ConvergenceLog
from repro.obs import enabled as _telemetry_enabled
from repro.queries.vector_query import QueryBatch
from repro.storage.base import LinearStorage


class ProgressiveSession:
    """A pausable, re-targetable progressive batch evaluation."""

    def __init__(
        self,
        storage: LinearStorage,
        batch: QueryBatch,
        penalty: Penalty | None = None,
        workers: int | None = None,
        convergence_capacity: int = 1024,
    ) -> None:
        self.storage = storage
        self.batch = batch
        self.penalty = penalty if penalty is not None else SsePenalty()
        # ``workers > 1`` parallelizes the rewrite front end (the distinct
        # per-dimension factors) without changing the resulting plan.
        self.rewrites = storage.rewrite_batch(batch, workers=workers)
        self.plan = QueryPlan.from_rewrites(self.rewrites)
        self.estimates = np.zeros(batch.size)
        #: Bounded ring of ``(B, retrievals, bound, wall_time)`` events —
        #: one per applied coefficient; see ``docs/OBSERVABILITY.md``.
        self.convergence = ConvergenceLog(capacity=convergence_capacity)
        self._retrieved = np.zeros(self.plan.num_keys, dtype=bool)
        self._steps_taken = 0
        self._coefficients = np.zeros(self.plan.num_keys)
        self._entry_order, self._offsets = self.plan.csr_by_key()
        self._importance = self.plan.importance(self.penalty)
        self._heap: list[tuple[float, int, int]] = []
        self._rebuild_heap()
        self._k_const: float | None = None
        self._k_const_version: int | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def steps_taken(self) -> int:
        """Coefficients retrieved so far (self-fetched and delivered)."""
        return self._steps_taken

    @property
    def remaining(self) -> int:
        """Coefficients not yet retrieved."""
        return self.plan.num_keys - self.steps_taken

    @property
    def is_exact(self) -> bool:
        """True once every master-list coefficient has been retrieved."""
        return self.remaining == 0

    def retrieved_keys(self) -> np.ndarray:
        """Master-list keys whose coefficients are already held."""
        return self.plan.keys[self._retrieved]

    def pending(self) -> tuple[np.ndarray, np.ndarray]:
        """``(keys, importance)`` of the not-yet-retrieved master keys.

        The scheduler hook: a shared scheduler seeds its global heap from
        every live session's pending view.
        """
        mask = ~self._retrieved
        return self.plan.keys[mask], self._importance[mask]

    def key_position(self, key: int) -> int | None:
        """Master-list position of ``key``, or None if not in this batch."""
        pos = int(np.searchsorted(self.plan.keys, key))
        if pos < self.plan.num_keys and int(self.plan.keys[pos]) == int(key):
            return pos
        return None

    def is_pending(self, key: int) -> bool:
        """True when ``key`` is in the master list and not yet retrieved."""
        pos = self.key_position(key)
        return pos is not None and not self._retrieved[pos]

    def worst_case_bound(self) -> float:
        """Theorem-1 bound on the penalty of the *current* estimates.

        The constant ``K = sum |Delta_hat|`` is cached, but the cache is
        tied to the store's mutation counter: streaming inserts change the
        stored coefficients, so a bound computed after an update reflects
        the updated store.
        """
        self._prune_heap()
        if not self._heap:
            return 0.0
        version = getattr(self.storage.store, "version", None)
        if self._k_const is None or version != self._k_const_version:
            self._k_const = self.storage.total_l1()
            self._k_const_version = version
        next_iota = -self._heap[0][0]
        return float(self._k_const**self.penalty.homogeneity * next_iota)

    def expected_penalty(self) -> float:
        """Theorem-2 expected penalty of the current estimates."""
        if not self.penalty.is_quadratic:
            raise ValueError("Theorem 2 applies to quadratic penalties only")
        remaining_iota = float(self._importance[~self._retrieved].sum())
        return remaining_iota / (self.storage.domain_size - 1)

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------

    def advance(self, k: int = 1) -> int:
        """Retrieve the next ``k`` most important coefficients.

        Returns how many were actually retrieved (less than ``k`` only when
        the master list runs out).
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        done = 0
        while done < k and self._heap:
            neg_iota, key, pos = heapq.heappop(self._heap)
            if self._retrieved[pos]:
                continue  # stale entry from a penalty switch or a delivery
            coefficient = float(self.storage.store.fetch(np.array([key]))[0])
            self._apply(pos, coefficient)
            done += 1
        return done

    def deliver(self, key: int, coefficient: float) -> bool:
        """Apply a coefficient retrieved externally (scheduler hook).

        Marks ``key`` as retrieved and advances the estimates exactly as if
        :meth:`advance` had fetched it, but without touching the store —
        the caller already paid the retrieval.  Returns True when the key
        was pending (False: not in the master list, or already held).
        """
        pos = self.key_position(key)
        if pos is None or self._retrieved[pos]:
            return False
        self._apply(pos, float(coefficient))
        return True

    def set_penalty(self, penalty: Penalty) -> None:
        """Re-rank the remaining retrievals under a new penalty.

        Progress is kept; only the order of future retrievals changes.
        """
        self.penalty = penalty
        self._importance = self.plan.importance(penalty)
        self._rebuild_heap()

    def run_until(
        self,
        bound: float | None = None,
        predicate: Callable[[np.ndarray], bool] | None = None,
        max_steps: int | None = None,
    ) -> int:
        """Advance until a stopping condition holds.

        Parameters
        ----------
        bound:
            Stop once the Theorem-1 worst-case bound drops to or below this
            value (guaranteed accuracy).
        predicate:
            Stop once ``predicate(estimates)`` returns True (observed
            accuracy; called after every retrieval).
        max_steps:
            Hard cap on retrievals for this call.

        Returns the number of coefficients retrieved by this call.
        """
        if bound is None and predicate is None and max_steps is None:
            raise ValueError("provide at least one stopping condition")
        done = 0
        while self._heap:
            if max_steps is not None and done >= max_steps:
                break
            if bound is not None and self.worst_case_bound() <= bound:
                break
            if predicate is not None and predicate(self.estimates):
                break
            done += self.advance(1)
        return done

    def run_to_completion(self) -> np.ndarray:
        """Retrieve everything; returns the exact answers."""
        self.advance(self.remaining + len(self._heap))
        return self.estimates.copy()

    def exact_answers(self) -> np.ndarray:
        """Exact answers rebuilt from the held coefficients.

        Only valid once :attr:`is_exact`.  Unlike :attr:`estimates` — which
        accumulates one coefficient at a time in retrieval order — this
        recomputes the answers with the same single
        :meth:`~repro.core.plan.QueryPlan.exact_estimates` reduction that
        :meth:`BatchBiggestB.run` uses, so the result is bit-identical to an
        independent batch evaluation regardless of delivery order.
        """
        if not self.is_exact:
            raise ValueError("session is not exhausted; answers are estimates")
        return self.plan.exact_estimates(self._coefficients)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _apply(self, pos: int, coefficient: float) -> None:
        self._retrieved[pos] = True
        self._steps_taken += 1
        self._coefficients[pos] = coefficient
        segment = self._entry_order[self._offsets[pos] : self._offsets[pos + 1]]
        np.add.at(
            self.estimates,
            self.plan.entry_qid[segment],
            self.plan.entry_val[segment] * coefficient,
        )
        # Convergence telemetry: one event per applied coefficient.  The
        # bound is computed from the session's own pending heap, so the
        # trajectory is monotone regardless of who fetched the key.
        if _telemetry_enabled():
            stats = getattr(self.storage.store, "stats", None)
            self.convergence.record(
                steps_taken=self._steps_taken,
                retrievals=(
                    int(stats.retrievals) if stats is not None else self._steps_taken
                ),
                worst_case_bound=self.worst_case_bound(),
            )

    def _prune_heap(self) -> None:
        while self._heap and self._retrieved[self._heap[0][2]]:
            heapq.heappop(self._heap)

    def _rebuild_heap(self) -> None:
        pending = np.nonzero(~self._retrieved)[0]
        self._heap = [
            (-float(self._importance[pos]), int(self.plan.keys[pos]), int(pos))
            for pos in pending
        ]
        heapq.heapify(self._heap)
