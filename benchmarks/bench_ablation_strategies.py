"""ABL-STRAT: linear storage strategies and wavelet families.

Section 1.2 observes that Batch-Biggest-B runs over *any* linear storage
strategy.  This ablation compares wavelet, prefix-sum and identity storage
on the same partition batch (retrievals, exactness), and sweeps the wavelet
family (haar/db2/db3/db4) to show the query-sparsity cost of longer filters
— the reason the paper matches the filter length to the polynomial degree
(2*delta + 2) instead of always using long filters.
"""

from __future__ import annotations

import numpy as np

from repro.core.batch import BatchBiggestB
from repro.queries.workload import partition_count_batch
from repro.storage.identity import IdentityStorage
from repro.storage.prefix_sum import PrefixSumStorage
from repro.storage.wavelet_store import WaveletStorage


SHAPE = (64, 64)
CELLS = (8, 8)


def _setup(seed: int = 3):
    rng = np.random.default_rng(seed)
    data = rng.random(SHAPE)
    batch = partition_count_batch(SHAPE, CELLS, rng=rng)
    return data, batch


def test_strategy_comparison(report, benchmark):
    data, batch = _setup()
    exact = batch.exact_dense(data)
    strategies = [
        WaveletStorage.build(data, wavelet="haar"),
        PrefixSumStorage.build(data),
        IdentityStorage.build(data),
    ]

    def evaluate_all():
        rows = []
        for storage in strategies:
            storage.reset_stats()
            ev = BatchBiggestB(storage, batch)
            answers = ev.run()
            rows.append(
                (
                    storage.strategy_name,
                    ev.master_list_size,
                    ev.unshared_retrievals,
                    bool(np.allclose(answers, exact, atol=1e-8)),
                )
            )
        return rows

    rows = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)
    lines = [f"{'strategy':>11} {'shared I/O':>11} {'unshared I/O':>13} {'exact?':>7}"]
    for name, shared, unshared, ok in rows:
        lines.append(f"{name:>11} {shared:>11,} {unshared:>13,} {str(ok):>7}")
        assert ok
    report("ABL-STRAT linear storage strategies (64x64, 64-cell partition)", lines)

    by_name = {r[0]: r for r in rows}
    # Prefix sums are the cheapest exact strategy for COUNT partitions;
    # wavelets beat raw data by a wide margin; identity has no sharing.
    assert by_name["prefix-sum"][1] <= by_name["wavelet"][1]
    assert by_name["wavelet"][1] < by_name["identity"][1]
    assert by_name["identity"][1] == by_name["identity"][2]


def test_wavelet_family_sweep(report, benchmark):
    data, batch = _setup(seed=4)
    exact = batch.exact_dense(data)

    def sweep():
        rows = []
        for name in ("haar", "db2", "db3", "db4"):
            storage = WaveletStorage.build(data, wavelet=name)
            ev = BatchBiggestB(storage, batch)
            answers = ev.run()
            rows.append(
                (
                    name,
                    storage.filter.length,
                    ev.master_list_size,
                    ev.unshared_retrievals,
                    bool(np.allclose(answers, exact, atol=1e-7)),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"{'filter':>8} {'taps':>5} {'shared I/O':>11} {'unshared I/O':>13} {'exact?':>7}"
    ]
    for name, taps, shared, unshared, ok in rows:
        lines.append(f"{name:>8} {taps:>5} {shared:>11,} {unshared:>13,} {str(ok):>7}")
        assert ok
    report("ABL-STRAT wavelet family sweep (COUNT batch)", lines)

    # Longer filters cost more I/O on indicator queries: the reason degree-0
    # batches use Haar and degree-delta batches use 2*delta + 2 taps.
    shared_by_taps = [(r[1], r[2]) for r in rows]
    for (taps_a, shared_a), (taps_b, shared_b) in zip(
        shared_by_taps, shared_by_taps[1:]
    ):
        assert taps_a < taps_b
        assert shared_a <= shared_b
