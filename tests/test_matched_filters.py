"""Unit tests for per-axis (matched) wavelet filters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import BatchBiggestB
from repro.queries.range import HyperRect
from repro.queries.vector_query import QueryBatch, VectorQuery
from repro.queries.workload import partition_sum_batch
from repro.storage.wavelet_store import WaveletStorage
from repro.wavelets.filters import daubechies_filter, resolve_filters
from repro.wavelets.transform import wavedec, wavedec_nd, waverec_nd


class TestResolveFilters:
    def test_single_name_replicates(self):
        filters = resolve_filters("db2", 3)
        assert len(filters) == 3
        assert all(f.name == "db2" for f in filters)

    def test_sequence_per_axis(self):
        filters = resolve_filters(("haar", "db2"), 2)
        assert [f.name for f in filters] == ["haar", "db2"]

    def test_filter_instances_accepted(self):
        f = daubechies_filter(3)
        assert resolve_filters(f, 2) == (f, f)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            resolve_filters(("haar",), 2)


class TestMixedTransforms:
    def test_roundtrip(self, rng):
        arr = rng.normal(size=(16, 8, 16))
        filters = ("haar", "db2", "db3")
        coeffs = wavedec_nd(arr, filters)
        np.testing.assert_allclose(waverec_nd(coeffs, filters), arr, atol=1e-9)

    def test_parseval(self, rng):
        arr = rng.normal(size=(16, 16))
        coeffs = wavedec_nd(arr, ("haar", "db2"))
        assert float(np.sum(coeffs**2)) == pytest.approx(float(np.sum(arr**2)))

    def test_separability_with_mixed_filters(self, rng):
        u = rng.normal(size=16)
        v = rng.normal(size=8)
        c = wavedec_nd(np.outer(u, v), ("haar", "db2"))
        np.testing.assert_allclose(
            c, np.outer(wavedec(u, "haar"), wavedec(v, "db2")), atol=1e-10
        )


class TestMatchedFilterStorage:
    def test_exact_answers(self, rng, data_2d):
        store = WaveletStorage.build(data_2d, wavelet=("haar", "db2"))
        q = VectorQuery.sum(HyperRect.from_bounds([(2, 13), (1, 9)]), 1)
        assert store.answer(q) == pytest.approx(q.evaluate_dense(data_2d), rel=1e-9)

    def test_streaming_insert_matches_bulk(self, rng):
        records = rng.integers(0, 8, size=(30, 2))
        dense = np.zeros((8, 8))
        streaming = WaveletStorage.empty((8, 8), wavelet=("haar", "db2"))
        for r in records:
            dense[tuple(r)] += 1.0
            streaming.insert(tuple(int(v) for v in r))
        bulk = WaveletStorage.build(dense, wavelet=("haar", "db2"))
        np.testing.assert_allclose(
            streaming.store.as_dense(), bulk.store.as_dense(), atol=1e-9
        )

    def test_reconstruct(self, rng, data_2d):
        store = WaveletStorage.build(data_2d, wavelet=("db3", "haar"))
        np.testing.assert_allclose(store.reconstruct_data(), data_2d, atol=1e-9)

    def test_matched_filters_reduce_io_on_sum_workload(self, rng):
        """Haar on grouping axes + db2 on the degree-1 measure axis beats
        uniform db2 on I/O — the reason to match filters to degrees."""
        shape = (16, 16, 16)
        data = rng.random(shape)
        batch = partition_sum_batch(
            shape, (4, 4), measure_attribute=2, rng=np.random.default_rng(5)
        )
        uniform = WaveletStorage.build(data, wavelet="db2")
        matched = WaveletStorage.build(data, wavelet=("haar", "haar", "db2"))
        ev_uniform = BatchBiggestB(uniform, batch)
        ev_matched = BatchBiggestB(matched, batch)
        np.testing.assert_allclose(ev_matched.run(), ev_uniform.run(), rtol=1e-8)
        np.testing.assert_allclose(
            ev_matched.run(), batch.exact_dense(data), rtol=1e-8
        )
        assert ev_matched.master_list_size < ev_uniform.master_list_size
        assert ev_matched.unshared_retrievals < ev_uniform.unshared_retrievals

    def test_filter_property_exposes_axis0(self, data_2d):
        store = WaveletStorage.build(data_2d, wavelet=("haar", "db2"))
        assert store.filter.name == "haar"
        assert [f.name for f in store.filters] == ["haar", "db2"]
