"""Unit tests for hyper-rectangular ranges."""

from __future__ import annotations

import numpy as np
import pytest

from repro.queries.range import HyperRect, is_partition


class TestConstruction:
    def test_from_bounds(self):
        r = HyperRect.from_bounds([(0, 3), (2, 2)])
        assert r.bounds == ((0, 3), (2, 2))
        assert r.ndim == 2

    def test_full_domain(self):
        r = HyperRect.full_domain((4, 8))
        assert r.bounds == ((0, 3), (0, 7))

    def test_volume(self):
        assert HyperRect.from_bounds([(0, 3), (2, 2), (1, 5)]).volume == 4 * 1 * 5

    def test_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            HyperRect.from_bounds([(3, 1)])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            HyperRect.from_bounds([(-1, 3)])

    def test_rejects_no_dims(self):
        with pytest.raises(ValueError):
            HyperRect(())


class TestGeometry:
    def test_contains(self):
        r = HyperRect.from_bounds([(1, 3), (0, 2)])
        assert r.contains((1, 0))
        assert r.contains((3, 2))
        assert not r.contains((0, 0))
        assert not r.contains((1, 3))

    def test_contains_many(self):
        r = HyperRect.from_bounds([(1, 3), (0, 2)])
        pts = np.array([[1, 0], [4, 0], [2, 2], [2, 3]])
        np.testing.assert_array_equal(
            r.contains_many(pts), [True, False, True, False]
        )

    def test_indicator(self):
        r = HyperRect.from_bounds([(1, 2), (0, 1)])
        ind = r.indicator((4, 4))
        assert ind.sum() == 4
        assert ind[1, 0] == 1.0 and ind[0, 0] == 0.0

    def test_validate_for(self):
        r = HyperRect.from_bounds([(0, 3)])
        r.validate_for((4,))
        with pytest.raises(ValueError):
            r.validate_for((2,))
        with pytest.raises(ValueError):
            r.validate_for((4, 4))

    def test_intersect(self):
        a = HyperRect.from_bounds([(0, 5), (0, 5)])
        b = HyperRect.from_bounds([(3, 8), (2, 4)])
        assert a.intersect(b).bounds == ((3, 5), (2, 4))

    def test_intersect_empty(self):
        a = HyperRect.from_bounds([(0, 2)])
        b = HyperRect.from_bounds([(5, 8)])
        assert a.intersect(b) is None

    def test_split(self):
        left, right = HyperRect.from_bounds([(0, 7)]).split(0, 3)
        assert left.bounds == ((0, 3),)
        assert right.bounds == ((4, 7),)

    def test_split_invalid(self):
        with pytest.raises(ValueError):
            HyperRect.from_bounds([(0, 7)]).split(0, 7)


class TestCornerPoints:
    def test_inclusion_exclusion_matches_direct_sum(self, rng):
        data = rng.random((8, 8))
        prefix = np.cumsum(np.cumsum(data, axis=0), axis=1)
        r = HyperRect.from_bounds([(2, 5), (1, 6)])
        total = sum(sign * prefix[corner] for corner, sign in r.corner_points())
        assert total == pytest.approx(float(data[2:6, 1:7].sum()))

    def test_corner_count_at_origin(self):
        """Ranges anchored at zero drop the zero-valued corners."""
        r = HyperRect.from_bounds([(0, 3), (0, 3)])
        assert len(list(r.corner_points())) == 1
        r = HyperRect.from_bounds([(1, 3), (0, 3)])
        assert len(list(r.corner_points())) == 2
        r = HyperRect.from_bounds([(1, 3), (1, 3)])
        assert len(list(r.corner_points())) == 4

    def test_corner_signs_sum(self):
        """Signs alternate with the number of lowered coordinates."""
        r = HyperRect.from_bounds([(2, 4), (3, 5), (1, 2)])
        corners = dict(r.corner_points())
        assert corners[(4, 5, 2)] == 1
        assert corners[(1, 5, 2)] == -1
        assert corners[(1, 2, 2)] == 1
        assert corners[(1, 2, 0)] == -1


class TestIsPartition:
    def test_accepts_grid(self):
        rects = [
            HyperRect.from_bounds([(0, 1), (0, 3)]),
            HyperRect.from_bounds([(2, 3), (0, 3)]),
        ]
        assert is_partition(rects, (4, 4))

    def test_rejects_overlap(self):
        rects = [
            HyperRect.from_bounds([(0, 2), (0, 3)]),
            HyperRect.from_bounds([(2, 3), (0, 3)]),
        ]
        assert not is_partition(rects, (4, 4))

    def test_rejects_gap(self):
        rects = [HyperRect.from_bounds([(0, 1), (0, 3)])]
        assert not is_partition(rects, (4, 4))
