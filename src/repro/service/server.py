"""The progressive query service façade.

:class:`ProgressiveQueryService` is the front door of the service layer:
clients submit query batches, poll progressive estimates with Theorem-1
worst-case bounds, re-target penalties as their cursor moves, and cancel
when the accuracy suffices — while one
:class:`~repro.service.scheduler.SharedRetrievalScheduler` merges every
live session's retrieval schedule so overlapping batches share I/O, and
the coefficients themselves can live on a paged disk tier
(:class:`~repro.storage.paged.PagedCoefficientStore`) behind an LRU
buffer pool.

All public methods are thread-safe; a dashboard per client thread driving
one service object is the intended deployment shape (see
``examples/concurrent_dashboards.py`` and ``repro serve-demo``).
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.penalties import Penalty
from repro.core.session import ProgressiveSession
from repro.obs import LEDGER, REGISTRY, ConvergenceRecord, MetricRegistry, span
from repro.queries.vector_query import QueryBatch
from repro.service.scheduler import SharedRetrievalScheduler
from repro.storage.base import LinearStorage


@dataclass(frozen=True)
class SessionSnapshot:
    """A consistent point-in-time view of one session's progress.

    Attributes
    ----------
    session_id:
        The id :meth:`ProgressiveQueryService.submit` returned.
    estimates:
        Progressive answers (exact once ``is_exact``; the exhausted
        snapshot is rebuilt deterministically, bit-equal to an independent
        :meth:`~repro.core.batch.BatchBiggestB.run`).
    steps_taken, remaining:
        Coefficients held / still pending for this batch.
    worst_case_bound:
        Theorem-1 guarantee on the current estimates' penalty.  Valid
        even while ``degraded``: skipped coefficients stay in the bound
        mass (see ``docs/RESILIENCE.md``).
    is_exact:
        True once the master list is exhausted.
    degraded, skipped_count:
        ``degraded`` is True while any of the batch's coefficients were
        marked unavailable (store fetch abandoned after retries);
        ``skipped_count`` says how many.  A degraded session can be
        re-driven with :meth:`ProgressiveQueryService.retry_skipped`
        once the store recovers.
    """

    session_id: str
    estimates: np.ndarray
    steps_taken: int
    remaining: int
    worst_case_bound: float
    is_exact: bool
    degraded: bool = False
    skipped_count: int = 0


@dataclass(frozen=True)
class ServiceMetrics:
    """Service-wide instrumentation snapshot.

    Since the telemetry refactor this is a *compatibility view*: every
    field is derived from the ``repro.obs`` metric registry (see
    ``docs/OBSERVABILITY.md``), which is the single source of truth and
    additionally carries latency histograms and exposition
    (``render_prometheus`` / ``to_json`` / the ``/metrics`` endpoint)
    that this snapshot does not.

    ``retrievals`` counts actual store fetches; ``deliveries`` counts
    coefficient applications into sessions.  ``shared_hit_ratio`` is the
    fraction of deliveries that re-used another session's fetch — the
    service-level generalization of Observation 1 — and reads 0.0 (not
    NaN) on a freshly started service.  ``page_cache`` is the paged
    store's buffer-pool counters when the coefficients live on disk
    (None for in-memory stores).
    """

    retrievals: int
    deliveries: int
    shared_deliveries: int
    cache_deliveries: int
    shared_hit_ratio: float
    live_sessions: int
    sessions_submitted: int
    per_session_steps: dict[str, int] = field(default_factory=dict)
    page_cache: dict[str, int | float] | None = None
    #: Keys the shared schedule marked unavailable (degraded sessions).
    skipped_keys: int = 0


class ProgressiveQueryService:
    """Serve many concurrent progressive batch evaluations over one store."""

    def __init__(
        self,
        storage: LinearStorage,
        registry: MetricRegistry | None = None,
        chunk_size: int | None = None,
    ) -> None:
        self.storage = storage
        self.registry = REGISTRY if registry is None else registry
        kwargs = {} if chunk_size is None else {"chunk_size": chunk_size}
        self.scheduler = SharedRetrievalScheduler(
            storage.store, registry=self.registry, **kwargs
        )
        self._lock = threading.RLock()
        self._sessions: dict[str, tuple[ProgressiveSession, int]] = {}
        self._ids = itertools.count(1)
        self._submitted_total = self.registry.counter(
            "repro_service_sessions_submitted_total",
            "Progressive sessions opened by submit()",
            ("scheduler",),
        )
        self._submit_seconds = self.registry.histogram(
            "repro_service_submit_seconds",
            "Wall-clock latency of submit() (rewrite + plan + registration)",
        )
        self._advance_seconds = self.registry.histogram(
            "repro_service_advance_seconds",
            "Wall-clock latency of advance() calls",
        )

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------

    def submit(
        self,
        batch: QueryBatch,
        penalty: Penalty | None = None,
        workers: int | None = None,
    ) -> str:
        """Open a progressive session for ``batch``; returns its id.

        The session's master list immediately joins the shared schedule:
        keys another live session already fetched are served from the
        coefficient cache as the schedule reaches them.  Query ranges are
        validated against the store's domain up front — an out-of-bounds
        batch raises ``ValueError`` here, not deep in the rewrite.
        ``workers > 1``
        computes the batch's distinct rewrite factors on a process pool
        before assembly — worthwhile for cold caches on large domains, since
        submit latency is dominated by the rewrite front end.
        """
        batch.validate_for(self.storage.shape)
        with self._lock, span("service.submit", queries=batch.size):
            t0 = time.perf_counter()
            session = ProgressiveSession(
                self.storage, batch, penalty=penalty, workers=workers
            )
            session_id = f"s{next(self._ids)}"
            sid = self.scheduler.register(session)
            self._sessions[session_id] = (session, sid)
            # Expose the session's cost account process-wide (``repro
            # cost`` / ``/costs.json``); the ledger disambiguates id
            # collisions across service instances with a ``#n`` suffix.
            LEDGER.register(session_id, session.costs)
            self._submitted_total.inc(scheduler=self.scheduler._instance)
            self._submit_seconds.observe(time.perf_counter() - t0)
            return session_id

    def advance(self, session_id: str, k: int = 1, deadline: float | None = None) -> int:
        """Drive the shared schedule until this session gains ``k`` keys.

        Returns the number of coefficients the session actually gained;
        every other live session keeps the coefficients popped on the way.
        ``deadline`` (wall-clock seconds for this call) caps how long a
        slow store can hold the client: the call returns early with
        whatever progress was made — latency degrades, correctness never.
        """
        with self._lock:
            t0 = time.perf_counter()
            _, sid = self._session(session_id)
            gained = self.scheduler.advance_session(sid, k, deadline=deadline)
            self._advance_seconds.observe(time.perf_counter() - t0)
            return gained

    def run_to_completion(self, session_id: str) -> np.ndarray:
        """Advance until the session is exact; returns the exact answers."""
        with self._lock:
            session, sid = self._session(session_id)
            self.scheduler.advance_session(sid, session.remaining)
            return session.exact_answers()

    def poll(self, session_id: str) -> SessionSnapshot:
        """A consistent snapshot of the session's progress and bound."""
        with self._lock:
            session, _ = self._session(session_id)
            estimates = (
                session.exact_answers() if session.is_exact else session.estimates.copy()
            )
            return SessionSnapshot(
                session_id=session_id,
                estimates=estimates,
                steps_taken=session.steps_taken,
                remaining=session.remaining,
                worst_case_bound=session.worst_case_bound(),
                is_exact=session.is_exact,
                degraded=session.degraded,
                skipped_count=session.skipped_count,
            )

    def set_penalty(self, session_id: str, penalty: Penalty) -> None:
        """Re-target a session (cursor moved); re-ranks its pending keys."""
        with self._lock:
            session, sid = self._session(session_id)
            session.set_penalty(penalty)
            self.scheduler.reprioritize(sid)

    def retry_skipped(self, session_id: str) -> int:
        """Re-queue a degraded session's unavailable keys (store recovered).

        Puts every skipped key back on the session's and the shared
        schedule's heaps at its current importance; returns how many were
        re-queued (0 for a healthy session).  The continued run retrieves
        them exactly where Batch-Biggest-B would have, so the exhausted
        answers are unaffected by the outage.
        """
        with self._lock:
            session, sid = self._session(session_id)
            requeued = session.retry_skipped()
            if requeued:
                self.scheduler.reprioritize(sid)
            return requeued

    def cancel(self, session_id: str) -> None:
        """Close a session; its share of the coefficient cache is released
        once no other live session holds the keys.

        Unknown or already-cancelled ids raise the same friendly
        ``KeyError`` as every other session accessor — cancelling twice
        is an error, not a crash with a raw ``KeyError``.
        """
        with self._lock:
            self._session(session_id)  # friendly error for unknown ids
            _, sid = self._sessions.pop(session_id)
            self.scheduler.deregister(sid)

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------

    def convergence(self, session_id: str) -> list[ConvergenceRecord]:
        """The session's live error-vs-I/O trajectory (oldest first).

        One :class:`~repro.obs.ConvergenceRecord` per applied coefficient:
        ``(steps_taken, retrievals, worst_case_bound, wall_time)``.  The
        ``worst_case_bound`` column is monotonically non-increasing —
        that is the paper's Figures 5-7 reproduced from live telemetry;
        plot it against ``steps_taken`` (the progressive budget B) to
        watch the Theorem-1 guarantee decay as the schedule runs.

        The returned list is a
        :class:`~repro.obs.ConvergenceTrajectory`: it additionally
        carries ``dropped`` (records evicted by the bounded ring before
        this snapshot) and ``capacity``, so a dashboard can tell a
        complete trajectory from a truncated one.
        """
        with self._lock:
            session, _ = self._session(session_id)
            return session.convergence.trajectory()

    def cost_report(self, session_id: str) -> dict:
        """What did *this* session cost?  (See ``docs/OBSERVABILITY.md``.)

        A JSON-friendly dict: per-stage wall/CPU timings
        (``rewrite -> plan -> schedule -> fetch -> apply``; ``schedule``
        is inclusive of the ``fetch`` stages nested inside it) plus
        resource counters — retrievals, coefficient bytes, cross-session
        cache hits, deliveries, store retries, skipped keys — and the
        session's progress (master-list size, steps taken, exactness).
        """
        with self._lock:
            session, _ = self._session(session_id)
            report = session.costs.to_dict()
            report.update(
                session_id=session_id,
                master_keys=session.plan.num_keys,
                steps_taken=session.steps_taken,
                is_exact=session.is_exact,
            )
            return report

    def metrics(self) -> ServiceMetrics:
        """A :class:`ServiceMetrics` snapshot (see its docstring)."""
        with self._lock:
            m = self.scheduler.metrics
            per_session = {
                session_id: session.steps_taken
                for session_id, (session, _) in self._sessions.items()
            }
            cache = getattr(self.storage.store, "cache", None)
            page_cache = None
            if cache is not None:
                page_cache = {
                    "hits": cache.hits,
                    "misses": cache.misses,
                    "evictions": cache.evictions,
                    "hit_ratio": cache.hit_ratio,
                }
            return ServiceMetrics(
                retrievals=m.retrievals,
                deliveries=m.deliveries,
                shared_deliveries=m.shared_deliveries,
                cache_deliveries=m.cache_deliveries,
                shared_hit_ratio=m.shared_hit_ratio,
                live_sessions=len(self._sessions),
                sessions_submitted=int(
                    self._submitted_total.value(scheduler=self.scheduler._instance)
                ),
                per_session_steps=per_session,
                page_cache=page_cache,
                skipped_keys=m.skipped_keys,
            )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _session(self, session_id: str) -> tuple[ProgressiveSession, int]:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise KeyError(f"unknown or cancelled session {session_id!r}") from None
