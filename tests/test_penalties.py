"""Unit tests for structural error penalty functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.penalties import (
    CombinedPenalty,
    CursoredSsePenalty,
    LaplacianPenalty,
    LpPenalty,
    QuadraticFormPenalty,
    QuadraticPenalty,
    SsePenalty,
    WeightedSsePenalty,
)


def reference_importance(penalty, columns: np.ndarray) -> np.ndarray:
    """Definition 3 applied per key: iota(key) = p(column of coefficients)."""
    return np.array([penalty.column_importance(col) for col in columns])


def entries_from_columns(columns: np.ndarray):
    """Flatten a dense (num_keys, batch) coefficient matrix to plan entries."""
    key_pos, qid = np.nonzero(columns)
    return (
        key_pos.astype(np.int64),
        qid.astype(np.int64),
        columns[key_pos, qid],
        columns.shape[0],
        columns.shape[1],
    )


@pytest.fixture
def columns(rng):
    cols = rng.normal(size=(30, 6))
    cols[rng.random((30, 6)) < 0.5] = 0.0
    return cols


class TestSsePenalty:
    def test_value(self):
        p = SsePenalty()
        assert p(np.array([3.0, 4.0])) == pytest.approx(25.0)
        assert p(np.zeros(5)) == 0.0

    def test_homogeneity(self):
        p = SsePenalty()
        e = np.array([1.0, -2.0, 0.5])
        assert p(3 * e) == pytest.approx(9 * p(e))
        assert p(-e) == pytest.approx(p(e))

    def test_importance_matches_reference(self, columns):
        p = SsePenalty()
        got = p.importance_entries(*entries_from_columns(columns))
        np.testing.assert_allclose(got, reference_importance(p, columns), atol=1e-12)

    def test_is_quadratic(self):
        assert SsePenalty().is_quadratic


class TestWeightedSse:
    def test_value(self):
        p = WeightedSsePenalty([2.0, 0.0, 1.0])
        assert p(np.array([1.0, 5.0, 2.0])) == pytest.approx(2.0 + 0.0 + 4.0)

    def test_semi_definite_weights_allowed(self):
        """Zero weights say 'this error is irrelevant' (Definition 2)."""
        p = WeightedSsePenalty([0.0, 1.0])
        assert p(np.array([100.0, 0.0])) == 0.0

    def test_importance_matches_reference(self, columns):
        p = WeightedSsePenalty(np.array([1.0, 2.0, 0.0, 0.5, 4.0, 1.0]))
        got = p.importance_entries(*entries_from_columns(columns))
        np.testing.assert_allclose(got, reference_importance(p, columns), atol=1e-12)

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            WeightedSsePenalty([-1.0])

    def test_form_matrix(self):
        p = WeightedSsePenalty([4.0, 9.0])
        np.testing.assert_allclose(p.form_matrix(), np.diag([4.0, 9.0]))


class TestCursoredSse:
    def test_weights(self):
        p = CursoredSsePenalty(5, high_priority=[1, 3], high_weight=10.0)
        np.testing.assert_allclose(p.weights, [1, 10, 1, 10, 1])
        assert p.high_priority == {1, 3}

    def test_rejects_bad_index(self):
        with pytest.raises(ValueError):
            CursoredSsePenalty(3, high_priority=[5])

    def test_prioritizes_cursor_errors(self):
        p = CursoredSsePenalty(4, high_priority=[0])
        err_cursor = np.array([1.0, 0, 0, 0])
        err_far = np.array([0, 1.0, 0, 0])
        assert p(err_cursor) == pytest.approx(10 * p(err_far))


class TestLaplacian:
    def test_chain_value(self):
        p = LaplacianPenalty.chain(4)
        constant = np.full(4, 2.5)
        assert p(constant) == pytest.approx(0.0, abs=1e-12)
        spike = np.array([0.0, 1.0, 0.0, 0.0])
        lap = np.array([-1.0, 2.0, -1.0, 0.0])  # L @ spike (interior node)
        assert p(spike) == pytest.approx(float(np.sum(lap**2)))

    def test_penalizes_false_extrema_over_uniform_shift(self):
        """A bump (false local max) is worse than a constant offset."""
        p = LaplacianPenalty.chain(5)
        bump = np.array([0.0, 0.0, 1.0, 0.0, 0.0])
        shift = np.ones(5) * (np.linalg.norm(bump) / np.sqrt(5))
        assert p(bump) > p(shift)

    def test_importance_matches_reference(self, columns):
        p = LaplacianPenalty.chain(6)
        got = p.importance_entries(*entries_from_columns(columns))
        np.testing.assert_allclose(got, reference_importance(p, columns), atol=1e-10)

    def test_grid(self):
        p = LaplacianPenalty.grid((2, 3))
        assert p(np.ones(6)) == pytest.approx(0.0, abs=1e-12)
        assert p.batch_size == 6

    def test_from_edges(self):
        p = LaplacianPenalty.from_edges(3, [(0, 1), (1, 2)])
        chain = LaplacianPenalty.chain(3)
        e = np.array([1.0, -0.5, 2.0])
        assert p(e) == pytest.approx(chain(e))

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            LaplacianPenalty.from_edges(3, [(1, 1)])


class TestQuadraticForm:
    def test_matches_explicit_form(self, rng):
        m = rng.normal(size=(4, 4))
        form = m.T @ m
        p = QuadraticFormPenalty(form)
        e = rng.normal(size=4)
        assert p(e) == pytest.approx(float(e @ form @ e), rel=1e-9)

    def test_importance_matches_reference(self, rng, columns):
        m = rng.normal(size=(6, 6))
        p = QuadraticFormPenalty(m.T @ m)
        got = p.importance_entries(*entries_from_columns(columns))
        np.testing.assert_allclose(got, reference_importance(p, columns), rtol=1e-8)

    def test_rejects_indefinite(self):
        with pytest.raises(ValueError):
            QuadraticFormPenalty(np.array([[1.0, 0.0], [0.0, -1.0]]))

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            QuadraticFormPenalty(np.array([[1.0, 1.0], [0.0, 1.0]]))

    def test_semi_definite_accepted(self):
        form = np.array([[1.0, 1.0], [1.0, 1.0]])  # rank 1, PSD
        p = QuadraticFormPenalty(form)
        assert p(np.array([1.0, -1.0])) == pytest.approx(0.0, abs=1e-12)


class TestLpPenalty:
    @pytest.mark.parametrize("p_val", [1.0, 2.0, 3.0])
    def test_is_the_lp_norm(self, p_val, rng):
        e = rng.normal(size=8)
        assert LpPenalty(p_val)(e) == pytest.approx(
            float(np.linalg.norm(e, p_val)), rel=1e-12
        )

    def test_linf(self):
        p = LpPenalty(np.inf)
        assert p(np.array([1.0, -7.0, 3.0])) == pytest.approx(7.0)

    def test_homogeneity_degree_one(self):
        p = LpPenalty(3.0)
        e = np.array([1.0, 2.0])
        assert p(5 * e) == pytest.approx(5 * p(e))
        assert p.homogeneity == 1.0

    def test_importance_matches_reference(self, columns):
        for p_val in (1.0, 2.5, np.inf):
            p = LpPenalty(p_val)
            got = p.importance_entries(*entries_from_columns(columns))
            np.testing.assert_allclose(
                got, reference_importance(p, columns), atol=1e-12
            )

    def test_not_quadratic(self):
        assert not LpPenalty(2.0).is_quadratic

    def test_rejects_p_below_one(self):
        with pytest.raises(ValueError):
            LpPenalty(0.5)


class TestCombinedPenalty:
    def test_value_is_weighted_sum(self, rng):
        sse = SsePenalty()
        weighted = WeightedSsePenalty(np.arange(1.0, 7.0))
        combo = CombinedPenalty([(2.0, sse), (0.5, weighted)])
        e = rng.normal(size=6)
        assert combo(e) == pytest.approx(2 * sse(e) + 0.5 * weighted(e))

    def test_importance_is_weighted_sum(self, columns):
        sse = SsePenalty()
        lap = LaplacianPenalty.chain(6)
        combo = CombinedPenalty([(1.0, sse), (3.0, lap)])
        entries = entries_from_columns(columns)
        np.testing.assert_allclose(
            combo.importance_entries(*entries),
            sse.importance_entries(*entries) + 3 * lap.importance_entries(*entries),
            atol=1e-10,
        )

    def test_quadratic_combination_is_quadratic(self):
        combo = CombinedPenalty([(1.0, SsePenalty()), (1.0, LaplacianPenalty.chain(4))])
        assert combo.is_quadratic
        assert combo.homogeneity == 2.0

    def test_rejects_mixed_homogeneity(self):
        with pytest.raises(ValueError):
            CombinedPenalty([(1.0, SsePenalty()), (1.0, LpPenalty(2.0))])

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            CombinedPenalty([(-1.0, SsePenalty())])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CombinedPenalty([])


class TestQuadraticPenaltyGeneric:
    def test_from_factor_roundtrip(self, rng):
        factor = rng.normal(size=(3, 5))
        factor[np.abs(factor) < 0.8] = 0.0
        p = QuadraticPenalty.from_factor(factor)
        np.testing.assert_allclose(p.factor_dense(), factor)
        e = rng.normal(size=5)
        assert p(e) == pytest.approx(float(np.sum((factor @ e) ** 2)), rel=1e-10)

    def test_batch_size_mismatch_raises(self, columns):
        p = WeightedSsePenalty(np.ones(3))
        with pytest.raises(ValueError):
            p.importance_entries(*entries_from_columns(columns))


class TestDifferencePenalty:
    def test_chain_differences(self):
        from repro.core.penalties import DifferencePenalty

        p = DifferencePenalty(4)
        e = np.array([1.0, 3.0, 0.0, 0.0])
        assert p(e) == pytest.approx((1 - 3) ** 2 + (3 - 0) ** 2 + 0.0)

    def test_constant_offset_is_free(self):
        from repro.core.penalties import DifferencePenalty

        p = DifferencePenalty(5)
        assert p(np.full(5, 7.5)) == pytest.approx(0.0, abs=1e-12)

    def test_custom_edges(self):
        from repro.core.penalties import DifferencePenalty

        p = DifferencePenalty(3, edges=[(0, 2)])
        assert p(np.array([1.0, 100.0, 4.0])) == pytest.approx(9.0)

    def test_importance_matches_reference(self, columns):
        from repro.core.penalties import DifferencePenalty

        p = DifferencePenalty(6)
        got = p.importance_entries(*entries_from_columns(columns))
        np.testing.assert_allclose(got, reference_importance(p, columns), atol=1e-10)

    def test_is_quadratic_and_semidefinite(self):
        from repro.core.penalties import DifferencePenalty

        p = DifferencePenalty(3)
        assert p.is_quadratic
        # Semi-definite: the all-ones direction has zero penalty.
        assert p(np.ones(3)) == pytest.approx(0.0, abs=1e-12)

    def test_rejects_bad_edges(self):
        from repro.core.penalties import DifferencePenalty

        with pytest.raises(ValueError):
            DifferencePenalty(3, edges=[(1, 1)])
        with pytest.raises(ValueError):
            DifferencePenalty(3, edges=[(0, 5)])
        with pytest.raises(ValueError):
            DifferencePenalty(1)
