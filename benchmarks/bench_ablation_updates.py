"""ABL-UPDATE: streaming insert cost vs the dense rebuild alternative.

Sections 2.1 and 3.1 claim tuple inserts cost ``O((2*delta + 1)**d log**d
N)`` coefficient updates in the wavelet representation, which is what makes
it "competitive with the best known pre-aggregation techniques".  This
ablation measures the touched-coefficient counts and wall-clock of a
streaming insert across dimensionalities and filters, against rebuilding
the transform from scratch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage.wavelet_store import WaveletStorage
from repro.util import log2_int
from repro.wavelets.point import point_tensor
from repro.wavelets.transform import wavedec_nd


CASES = [
    ((64, 64), "haar"),
    ((64, 64), "db2"),
    ((16, 16, 16), "haar"),
    ((16, 16, 16), "db2"),
    ((8, 8, 8, 8), "db2"),
    ((8, 16, 8, 16, 8), "db2"),
]


def test_insert_touched_coefficients(report, benchmark):
    rng = np.random.default_rng(2)
    lines = [
        f"{'domain':>20} {'filter':>7} {'touched':>9} {'bound':>9} {'domain size':>12}"
    ]
    tensors = benchmark.pedantic(
        lambda: [
            point_tensor(filt, shape, tuple(int(rng.integers(0, s)) for s in shape))
            for shape, filt in CASES
        ],
        rounds=1,
        iterations=1,
    )
    for (shape, filt), tensor in zip(CASES, tensors):
        taps = 2 if filt == "haar" else 4
        # Per-dimension coefficient count is at most ~(window+1)*(levels+1).
        window = taps + 1
        bound = int(
            np.prod([(window + 1) * (log2_int(s) + 1) for s in shape])
        )
        size = int(np.prod(shape))
        lines.append(
            f"{str(shape):>20} {filt:>7} {tensor.nnz:>9,} {bound:>9,} {size:>12,}"
        )
        assert tensor.nnz <= bound
        assert tensor.nnz < size / 2
    report("ABL-UPDATE touched coefficients per tuple insert", lines)


@pytest.mark.parametrize("shape,filt", [((64, 64), "db2"), ((16, 16, 16), "db2")])
def test_streaming_insert_speed(benchmark, shape, filt):
    storage = WaveletStorage.empty(shape, wavelet=filt)
    rng = np.random.default_rng(0)
    coords = [tuple(int(rng.integers(0, s)) for s in shape) for _ in range(64)]
    it = iter(range(10**9))

    def insert():
        return storage.insert(coords[next(it) % len(coords)])

    touched = benchmark(insert)
    assert touched > 0


@pytest.mark.parametrize("shape", [(64, 64), (16, 16, 16)])
def test_dense_rebuild_speed(benchmark, shape):
    """The alternative to streaming: retransform the whole dense cube."""
    rng = np.random.default_rng(0)
    data = rng.random(shape)

    result = benchmark(lambda: wavedec_nd(data, "db2"))
    assert result.shape == tuple(shape)
