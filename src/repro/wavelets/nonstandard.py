"""The nonstandard (square) multiresolution decomposition.

The paper's conclusion asks "whether or not it is possible to design
transformations specifically for the range-sum problem that perform
significantly better than the wavelets used here".  The most prominent
alternative in the wavelet-OLAP literature (e.g. Vitter & Wang's
compression work) is the *nonstandard* decomposition: at every level one
filtering step is applied along **every** axis, producing ``2**d - 1``
detail bands per level, and only the all-lowpass band is recursed on.

Like the standard tensor basis it is orthonormal, so it is a valid linear
storage strategy and Batch-Biggest-B runs over it unchanged
(:class:`~repro.storage.nonstandard_store.NonstandardWaveletStorage`).
The interesting question is *query sparsity*: in the nonstandard basis a
range indicator's approximation factors stay supported on the whole range
at every level, so its rewritten query vector has ``O(range)`` nonzeros —
versus ``O(log**d N)`` in the standard basis.  The ablation bench
quantifies exactly this, which is the quantitative justification for
ProPolyne's choice of the standard basis.

Coefficient layout (for a hypercube of side ``N``, ``J = log2(N)``):

    [ approx (1) |
      level J bands 1..2**d-1, each (N/2**J)**d values |
      level J-1 bands ... | ... | level 1 bands ... ]

Band ``m`` is a bitmask over dimensions: bit ``k`` set means the highpass
filter was applied along axis ``k`` at that level.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util import check_shape, log2_int
from repro.wavelets.filters import WaveletFilter, get_filter
from repro.wavelets.sparse import DEFAULT_RTOL, SparseVector
from repro.wavelets.transform import dwt_level, idwt_level


def _check_hypercube(shape: Sequence[int]) -> tuple[int, int]:
    shape = check_shape(shape)
    sides = set(shape)
    if len(sides) != 1:
        raise ValueError(
            f"the nonstandard decomposition needs a hypercube domain, got {shape}"
        )
    return int(shape[0]), len(shape)


class NonstandardKeySpace:
    """Key arithmetic for the nonstandard layout."""

    def __init__(self, shape: Sequence[int]) -> None:
        self.side, self.ndim = _check_hypercube(shape)
        self.shape = tuple([self.side] * self.ndim)
        self.levels = log2_int(self.side)
        self.num_bands = (1 << self.ndim) - 1
        self._level_offsets: dict[int, int] = {}
        offset = 1  # key 0 is the final approximation
        for level in range(self.levels, 0, -1):
            self._level_offsets[level] = offset
            offset += self.num_bands * self.band_size(level)
        self.size = offset

    def band_size(self, level: int) -> int:
        """Values per band at ``level`` (side ``N / 2**level`` per axis)."""
        return (self.side >> level) ** self.ndim

    def band_shape(self, level: int) -> tuple[int, ...]:
        return tuple([self.side >> level] * self.ndim)

    def encode(self, level: int, band: int, flat_pos: int) -> int:
        """Key of (level, band bitmask, position)."""
        if not 1 <= level <= self.levels:
            raise ValueError(f"level must be in [1, {self.levels}]")
        if not 1 <= band <= self.num_bands:
            raise ValueError(f"band must be in [1, {self.num_bands}]")
        return self._level_offsets[level] + (band - 1) * self.band_size(level) + flat_pos

    def band_slice(self, level: int, band: int) -> slice:
        """Slice of the flat coefficient vector holding one band."""
        start = self.encode(level, band, 0)
        return slice(start, start + self.band_size(level))


def _one_step_all_axes(
    cur: np.ndarray, filt: WaveletFilter
) -> dict[int, np.ndarray]:
    """One analysis step along every axis: bitmask band -> subarray."""
    bands: dict[int, np.ndarray] = {0: cur}
    for axis in range(cur.ndim):
        new: dict[int, np.ndarray] = {}
        for mask, arr in bands.items():
            moved = np.moveaxis(arr, axis, -1)
            approx, detail = dwt_level(moved, filt)
            new[mask] = np.moveaxis(approx, -1, axis)
            new[mask | (1 << axis)] = np.moveaxis(detail, -1, axis)
        bands = new
    return bands


def _one_step_inverse(
    bands: dict[int, np.ndarray], filt: WaveletFilter, ndim: int
) -> np.ndarray:
    """Invert :func:`_one_step_all_axes`."""
    current = dict(bands)
    for axis in range(ndim - 1, -1, -1):
        bit = 1 << axis
        merged: dict[int, np.ndarray] = {}
        for mask in {m & ~bit for m in current}:
            approx = np.moveaxis(current[mask], axis, -1)
            detail = np.moveaxis(current[mask | bit], axis, -1)
            rec = idwt_level(approx, detail, filt)
            merged[mask] = np.moveaxis(rec, -1, axis)
        current = merged
    return current[0]


def ns_wavedec(arr: np.ndarray, filt: WaveletFilter | str) -> np.ndarray:
    """Nonstandard decomposition to the flat keyed layout."""
    filt = get_filter(filt)
    arr = np.asarray(arr, dtype=np.float64)
    keyspace = NonstandardKeySpace(arr.shape)
    out = np.empty(keyspace.size, dtype=np.float64)
    cur = arr
    for level in range(1, keyspace.levels + 1):
        bands = _one_step_all_axes(cur, filt)
        for band in range(1, keyspace.num_bands + 1):
            out[keyspace.band_slice(level, band)] = bands[band].ravel()
        cur = bands[0]
    out[0] = float(cur.ravel()[0])
    return out


def ns_waverec(coeffs: np.ndarray, shape: Sequence[int], filt: WaveletFilter | str) -> np.ndarray:
    """Invert :func:`ns_wavedec`."""
    filt = get_filter(filt)
    coeffs = np.asarray(coeffs, dtype=np.float64)
    keyspace = NonstandardKeySpace(shape)
    if coeffs.shape != (keyspace.size,):
        raise ValueError(f"expected {keyspace.size} coefficients")
    cur = np.full([1] * keyspace.ndim, coeffs[0])
    for level in range(keyspace.levels, 0, -1):
        bands: dict[int, np.ndarray] = {0: cur}
        for band in range(1, keyspace.num_bands + 1):
            bands[band] = coeffs[keyspace.band_slice(level, band)].reshape(
                keyspace.band_shape(level)
            )
        cur = _one_step_inverse(bands, filt, keyspace.ndim)
    return cur


def ns_query_vector(
    filt: WaveletFilter | str,
    shape: Sequence[int],
    bounds: Sequence[tuple[int, int]],
    monomials: Sequence[tuple[tuple[int, ...], float]],
    rtol: float = DEFAULT_RTOL,
) -> tuple[np.ndarray, np.ndarray]:
    """Sparse nonstandard transform of a polynomial range-sum query.

    Runs the per-dimension analysis cascades on the (separable) monomial
    factors and assembles each level's detail bands as outer products.
    Returns sorted ``(keys, values)`` arrays over the nonstandard key
    space.
    """
    filt = get_filter(filt)
    keyspace = NonstandardKeySpace(shape)
    from repro.wavelets.sparse import SparseTensor

    all_keys: list[np.ndarray] = []
    all_vals: list[np.ndarray] = []
    for exps, coeff in monomials:
        if len(exps) != keyspace.ndim or len(bounds) != keyspace.ndim:
            raise ValueError("bounds/exponents arity mismatch")
        # Per-dimension cascades: approx/detail vectors at every level.
        approxes: list[list[np.ndarray]] = []
        details: list[list[np.ndarray]] = []
        for (lo, hi), e in zip(bounds, exps):
            if not 0 <= lo <= hi < keyspace.side:
                raise ValueError(f"range [{lo}, {hi}] outside [0, {keyspace.side})")
            vec = np.zeros(keyspace.side)
            xs = np.arange(lo, hi + 1, dtype=np.float64)
            vec[lo : hi + 1] = xs**e
            per_level_a: list[np.ndarray] = []
            per_level_d: list[np.ndarray] = []
            cur = vec
            for _ in range(keyspace.levels):
                cur, det = dwt_level(cur, filt)
                per_level_a.append(cur)
                per_level_d.append(det)
            approxes.append(per_level_a)
            details.append(per_level_d)
        for level in range(1, keyspace.levels + 1):
            for band in range(1, keyspace.num_bands + 1):
                factors = []
                for dim in range(keyspace.ndim):
                    source = (
                        details[dim][level - 1]
                        if band & (1 << dim)
                        else approxes[dim][level - 1]
                    )
                    factors.append(SparseVector.from_dense(source, rtol=rtol))
                tensor = SparseTensor.from_outer(factors)
                if tensor.nnz:
                    all_keys.append(
                        keyspace.encode(level, band, 0) + tensor.indices
                    )
                    all_vals.append(coeff * tensor.values)
        approx_value = coeff * float(
            np.prod([approxes[dim][-1][0] for dim in range(keyspace.ndim)])
        )
        if approx_value != 0.0:
            all_keys.append(np.array([0], dtype=np.int64))
            all_vals.append(np.array([approx_value]))
    if not all_keys:
        return np.empty(0, dtype=np.int64), np.empty(0)
    keys = np.concatenate(all_keys)
    vals = np.concatenate(all_vals)
    uniq, inverse = np.unique(keys, return_inverse=True)
    summed = np.bincount(inverse, weights=vals, minlength=uniq.size)
    if summed.size:
        scale = float(np.max(np.abs(summed)))
        if scale > 0.0:
            keep = np.abs(summed) > rtol * scale
            uniq, summed = uniq[keep], summed[keep]
    return uniq, summed
