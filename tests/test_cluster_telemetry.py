"""Cluster telemetry federation over real process shards.

The tentpole acceptance gates live here: a 2-process-shard cluster must
expose shard-labeled series on the federated ``/metrics``, a single
Chrome trace must interleave spans from three distinct pids (router +
both workers) under one request id, ``/status`` must report per-shard
heartbeat/round-trip health, and SIGKILL-ing a worker mid-run must leave
the merged exposition valid with the dead shard marked down while
answers stay degraded-but-bounded.

Process shards spawn real children, so everything here runs from a real
test file (``multiprocessing`` spawn re-imports ``__main__``).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import obs
from repro.cluster import ClusterClient, ClusterHttpServer, build_cluster
from repro.queries.workload import partition_count_batch
from repro.storage.wavelet_store import WaveletStorage
from tests.promparse import validate_exposition

REQUEST_ID = "req-telemetry-1"


@pytest.fixture(scope="module")
def storage():
    rng = np.random.default_rng(99)
    data = rng.poisson(2.0, size=(32, 32)).astype(np.float64)
    return WaveletStorage.build(data, wavelet="db2")


def make_batch(seed: int):
    return partition_count_batch(
        (32, 32), (3, 3), rng=np.random.default_rng(seed)
    )


@pytest.fixture(scope="module")
def fed(storage, tmp_path_factory):
    """A traced 2-process-shard cluster after one federated pull.

    Runs a session to completion under one request id with tracing on in
    the router *and* both workers, then pulls telemetry once — the tests
    below assert on the resulting federated registry, trace ring, and
    status/health views without redoing the (spawn-heavy) setup.
    """
    was_tracing = obs.tracing_enabled()
    obs.set_tracing(True)
    obs.get_recorder().clear()
    path = tmp_path_factory.mktemp("fed") / "fed.pages"
    router = build_cluster(
        storage, path, 2, process_shards=True, buffer_pages=16, trace=True
    )
    try:
        with obs.trace_context(REQUEST_ID):
            sid = router.submit(make_batch(41))
            while router.advance(sid, 64):
                pass
        telemetry = router.pull_telemetry()
        yield router, sid, telemetry
    finally:
        router.close()
        obs.set_tracing(was_tracing)
        obs.get_recorder().clear()


class TestFederation:
    def test_pull_reaches_both_worker_processes(self, fed):
        router, _, telemetry = fed
        assert sorted(telemetry) == [0, 1]
        pids = {payload["pid"] for payload in telemetry.values()}
        assert len(pids) == 2 and os.getpid() not in pids
        for index, payload in telemetry.items():
            assert payload["shard"] == index
            assert payload["metrics"], "process shards ship their registry"
            assert payload["backlog"] == 0  # session ran to exact
            assert "spans" not in payload  # drained into the local ring

    def test_federated_metrics_carry_shard_labels(self, fed):
        router, _, _ = fed
        snapshot = router.federated_metrics_json()
        shard_labels = {
            sample["labels"].get("shard")
            for family in snapshot.values()
            for sample in family["samples"]
        }
        assert {"0", "1"} <= shard_labels
        # Local (router-side) series stay unlabeled next to the tagged
        # worker series — the merge extends labelnames per family.
        assert "repro_cluster_sessions_submitted_total" in snapshot

    def test_federated_exposition_is_strictly_valid(self, fed):
        router, _, _ = fed
        text = router.federated_metrics_text()
        assert validate_exposition(text) == []
        assert 'shard="0"' in text and 'shard="1"' in text

    def test_chrome_trace_interleaves_three_pids_under_request_id(self, fed):
        trace = obs.get_recorder().to_chrome_trace()
        by_request = {
            event["pid"]
            for event in trace["traceEvents"]
            if event.get("ph") == "X"
            and event.get("args", {}).get("request_id") == REQUEST_ID
        }
        assert len(by_request) >= 3  # router + both shard workers
        lanes = {
            event["args"]["name"]
            for event in trace["traceEvents"]
            if event.get("name") == "process_name"
        }
        assert {"repro-shard-0", "repro-shard-1"} <= lanes

    def test_status_reports_heartbeat_and_rtt(self, fed):
        router, sid, _ = fed
        status = router.status()
        assert status["sessions"][sid]["is_exact"]
        trajectory = status["sessions"][sid]["bound_trajectory"]
        assert trajectory, "/status carries the bound-descent tail"
        bounds = [point["worst_case_bound"] for point in trajectory]
        assert bounds == sorted(bounds, reverse=True)
        for entry in status["shards"].values():
            assert entry["alive"]
            assert entry["pid"] is not None
            assert entry["last_reply_age_s"] >= 0.0
            assert entry["rtt_p50_s"] > 0.0
            assert entry["rtt_p99_s"] >= entry["rtt_p50_s"]

    def test_cached_pull_skips_fresh_payloads(self, fed):
        router, _, _ = fed
        before = {i: p["pulled_at"] for i, p in router.pull_telemetry(
            max_age=3600.0
        ).items()}
        after = {i: p["pulled_at"] for i, p in router.pull_telemetry(
            max_age=3600.0
        ).items()}
        assert before == after  # within max_age: cache served, no re-poll


class TestChaosKill:
    def test_sigkill_mid_run_degrades_but_stays_bounded(
        self, storage, tmp_path
    ):
        router = build_cluster(
            storage, tmp_path / "chaos.pages", 2,
            process_shards=True, buffer_pages=16,
        )
        server = ClusterHttpServer(
            router, port=0, telemetry_interval=0.0, access_log=False
        ).start_in_thread()
        client = ClusterClient("127.0.0.1", server.port, timeout=30.0)
        try:
            sid = client.submit(make_batch(43))
            client.advance(sid, 8)
            # Cache both workers' series, then hard-kill one mid-run.
            router.pull_telemetry()
            router._shards[1].kill()
            while client.advance(sid, 64)["gained"]:
                pass
            snap = client.poll(sid)
            assert snap["degraded"] and snap["skipped_count"] > 0
            assert not snap["is_exact"]
            assert 0.0 < snap["worst_case_bound"] < float("inf")

            # The merged exposition must survive the outage: still
            # strictly valid, dead shard marked down, and its last
            # pulled series retained under shard="1".
            text = client.metrics_text()
            assert validate_exposition(text) == []
            assert 'repro_cluster_shard_up{shard="1"} 0' in text
            assert 'repro_cluster_shard_up{shard="0"} 1' in text
            assert 'shard="1"' in text

            status = client.status()
            assert status["shards"]["0"]["alive"]
            assert not status["shards"]["1"]["alive"]
            assert status["shed_shards"] == [1]

            health = client.healthz()
            assert not health["ok"]
            assert [s["up"] for s in health["shards"]] == [True, False]
        finally:
            client.close()
            server.close()
