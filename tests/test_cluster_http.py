"""The asyncio HTTP edge: session API, backpressure, chaos over HTTP."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cluster import (
    ClusterApiError,
    ClusterBusyError,
    ClusterClient,
    ClusterHttpServer,
    build_cluster,
)
from repro.queries.workload import partition_count_batch
from repro.storage.wavelet_store import WaveletStorage


@pytest.fixture(scope="module")
def storage():
    rng = np.random.default_rng(88)
    data = rng.poisson(2.0, size=(32, 32)).astype(np.float64)
    return WaveletStorage.build(data, wavelet="db2")


def make_batch(seed: int):
    return partition_count_batch(
        (32, 32), (3, 3), rng=np.random.default_rng(seed)
    )


@pytest.fixture
def edge(storage, tmp_path):
    router = build_cluster(
        storage, tmp_path / "edge.pages", 2,
        process_shards=False, buffer_pages=16,
    )
    server = ClusterHttpServer(router, port=0).start_in_thread()
    client = ClusterClient("127.0.0.1", server.port, timeout=30.0)
    yield server, client
    client.close()
    server.close()


class TestSessionApi:
    def test_submit_advance_poll_cancel_round_trip(self, edge, storage):
        server, client = edge
        batch = make_batch(11)
        sid = client.submit(batch)
        assert sid in client.sessions()

        out = client.advance(sid, 20)
        assert out["gained"] == 20
        snap = client.poll(sid)
        assert snap["steps_taken"] == 20 and not snap["is_exact"]

        # The HTTP snapshot is bit-equal to the router's own poll —
        # JSON floats round-trip exactly.
        direct = server.router.poll(sid)
        np.testing.assert_array_equal(snap["estimates"], direct.estimates)
        assert snap["worst_case_bound"] == direct.worst_case_bound

        while not snap["is_exact"]:
            if client.advance(sid, 64)["gained"] == 0:
                break
            snap = client.poll(sid)
        assert snap["is_exact"] and snap["remaining"] == 0

        client.cancel(sid)
        assert client.sessions() == []
        with pytest.raises(ClusterApiError) as err:
            client.poll(sid)
        assert err.value.status == 404

    def test_penalty_switch_and_retry_endpoints(self, edge):
        _, client = edge
        sid = client.submit(make_batch(13), penalty={"kind": "lp", "p": 1.0})
        client.advance(sid, 10)
        snap = client.set_penalty(
            sid, {"kind": "cursored_sse", "high_priority": [0, 1]}
        )
        assert snap["steps_taken"] == 10
        assert client.retry_skipped(sid) == 0  # healthy session
        client.cancel(sid)

    def test_submit_validates_domain_over_http(self, edge):
        _, client = edge
        with pytest.raises(ClusterApiError) as err:
            client.submit({
                "queries": [
                    {"kind": "count", "rect": [[0, 99], [0, 15]],
                     "label": "huge"},
                ]
            })
        assert err.value.status == 400
        assert "huge" in err.value.api_message

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"queries": []},
            {"queries": [{"kind": "median", "rect": [[0, 3], [0, 3]]}]},
            {"queries": [{"kind": "sum", "rect": [[0, 3], [0, 3]]}]},
            {"queries": [{"kind": "count", "rect": "nope"}]},
        ],
    )
    def test_malformed_submissions_are_400(self, edge, payload):
        _, client = edge
        with pytest.raises(ClusterApiError) as err:
            client.submit(payload)
        assert err.value.status == 400

    def test_unknown_routes_and_methods(self, edge):
        _, client = edge
        with pytest.raises(ClusterApiError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404
        with pytest.raises(ClusterApiError) as err:
            client._request("PUT", "/sessions")
        assert err.value.status == 405


class TestObservability:
    def test_metrics_costs_and_healthz(self, edge):
        _, client = edge
        sid = client.submit(make_batch(17))
        client.advance(sid, 12)
        text = client.metrics_text()
        assert "repro_cluster_sessions_submitted_total" in text
        assert "repro_cluster_shard_up" in text
        costs = client.costs()
        assert sid in costs
        report = client.session_costs(sid)
        assert report["counters"]["deliveries"] >= 12
        health = client.healthz()
        assert [s["up"] for s in health["shards"]] == [True, True]
        assert health["partitioner"]["kind"] == "hash"
        assert health["max_inflight"] == 32
        client.cancel(sid)

    def test_metrics_json_and_status_helpers(self, edge):
        _, client = edge
        sid = client.submit(make_batch(37))
        client.advance(sid, 10)
        snapshot = client.metrics()
        family = snapshot["repro_cluster_sessions_submitted_total"]
        assert family["kind"] == "counter" and family["samples"]
        status = client.status()
        entry = status["sessions"][sid]
        assert entry["steps_taken"] == 10 and not entry["is_exact"]
        assert entry["bound_trajectory"]
        # Inline shards still report heartbeat + RTT from the pipe-call
        # accounting; pid comes from telemetry (this same process here).
        for shard in status["shards"].values():
            assert shard["alive"] and shard["rtt_p50_s"] > 0.0
            assert shard["last_reply_age_s"] >= 0.0
        client.cancel(sid)

    def test_edge_request_metrics_label_routes(self, edge):
        _, client = edge
        sid = client.submit(make_batch(39))
        client.advance(sid, 4)
        client.cancel(sid)
        text = client.metrics_text()
        assert 'route="POST /sessions",status="201"' in text
        assert 'route="POST /sessions/{id}/advance"' in text
        assert 'route="DELETE /sessions/{id}"' in text
        assert "repro_edge_request_seconds_bucket" in text
        assert "repro_edge_response_bytes_sum" in text

    def test_healthz_is_503_once_a_shard_is_shed(self, storage, tmp_path):
        router = build_cluster(
            storage, tmp_path / "hz.pages", 2,
            process_shards=False, buffer_pages=16,
        )
        server = ClusterHttpServer(
            router, port=0, access_log=False
        ).start_in_thread()
        client = ClusterClient("127.0.0.1", server.port)
        try:
            assert client.healthz()["ok"]
            router._shed_shard(1)
            # The client surfaces the 503 body instead of raising, so
            # the per-shard detail stays reachable when unhealthy.
            health = client.healthz()
            assert not health["ok"]
            assert [s["up"] for s in health["shards"]] == [True, False]
            # Unsupervised: the tri-state collapses to up/down.
            assert [s["state"] for s in health["shards"]] == ["up", "down"]
            assert client.shard_states() == {0: "up", 1: "down"}
            import http.client

            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=10
            )
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            assert response.status == 503
            response.read()
            conn.close()
        finally:
            client.close()
            server.close()


class TestRequestIds:
    def test_request_id_is_echoed_and_recorded(self, edge):
        _, client = edge
        client.sessions()
        first = client.last_request_id
        assert first and len(first) == 12
        client.sessions()
        assert client.last_request_id != first  # fresh id per request

    def test_next_request_id_overrides_once(self, edge):
        _, client = edge
        client.next_request_id = "req-pinned-77"
        client.sessions()
        assert client.last_request_id == "req-pinned-77"
        assert client.next_request_id is None
        client.sessions()
        assert client.last_request_id != "req-pinned-77"

    def test_server_assigns_id_when_client_sends_none(self, edge):
        server, _ = edge
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request("GET", "/healthz")
        response = conn.getresponse()
        assert response.getheader("X-Request-Id")
        response.read()
        conn.close()


class TestAccessLog:
    def test_structured_access_log_lines(self, storage, tmp_path):
        lines: list[str] = []
        router = build_cluster(
            storage, tmp_path / "log.pages", 2,
            process_shards=False, buffer_pages=16,
        )
        server = ClusterHttpServer(
            router, port=0, access_log=lines.append
        ).start_in_thread()
        client = ClusterClient("127.0.0.1", server.port)
        try:
            client.next_request_id = "req-logged-1"
            sid = client.submit(make_batch(31))
            client.cancel(sid)
            import time as _time

            deadline = _time.time() + 5.0
            while len(lines) < 2 and _time.time() < deadline:
                _time.sleep(0.01)
            entries = [json.loads(line) for line in lines]
            submit = entries[0]
            assert submit["request_id"] == "req-logged-1"
            assert submit["method"] == "POST" and submit["path"] == "/sessions"
            assert submit["route"] == "POST /sessions"
            assert submit["status"] == 201 and submit["bytes"] > 0
            assert submit["duration_ms"] >= 0 and submit["slow"] is False
            assert {e["route"] for e in entries} >= {
                "POST /sessions", "DELETE /sessions/{id}",
            }
        finally:
            client.close()
            server.close()


class TestBackpressure:
    def test_admission_control_rejects_with_retry_after(
        self, storage, tmp_path
    ):
        router = build_cluster(
            storage, tmp_path / "bp.pages", 2,
            process_shards=False, buffer_pages=16,
        )
        # max_inflight=0: every session-facing request is shed at the
        # door — the deterministic way to exercise the 429 path.
        server = ClusterHttpServer(
            router, port=0, max_inflight=0, retry_after=2.5
        ).start_in_thread()
        client = ClusterClient("127.0.0.1", server.port)
        try:
            with pytest.raises(ClusterBusyError) as err:
                client.submit(make_batch(19))
            assert err.value.status == 429
            assert err.value.retry_after == 2.5
            # Observability bypasses admission: still visible when full.
            assert client.healthz()["shards"]
            assert "repro_cluster_http_rejected_total" in client.metrics_text()
        finally:
            client.close()
            server.close()

    def test_shard_blackout_degrades_over_http(self, storage, tmp_path):
        chaos = {
            "seed": 23,
            "transient_rate": 0.0,
            "blackout_keys": list(range(0, 1024, 3)),
            "max_attempts": 2,
        }
        router = build_cluster(
            storage, tmp_path / "deg.pages", 2,
            process_shards=False, buffer_pages=16,
            chaos=chaos, chaos_shard=0,
        )
        server = ClusterHttpServer(router, port=0).start_in_thread()
        client = ClusterClient("127.0.0.1", server.port)
        try:
            sid = client.submit(make_batch(29))
            while client.advance(sid, 64)["gained"]:
                pass
            snap = client.poll(sid)
            assert snap["degraded"] and snap["skipped_count"] > 0
            assert not snap["is_exact"]
            assert 0.0 < snap["worst_case_bound"] < float("inf")
        finally:
            client.close()
            server.close()


class TestWireFormat:
    def test_bad_json_body_is_400_not_500(self, edge):
        server, _ = edge
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request(
            "POST", "/sessions", body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        body = json.loads(response.read())
        assert response.status == 400
        assert "bad JSON" in body["error"]
        conn.close()

    def test_keep_alive_serves_multiple_requests(self, edge):
        server, _ = edge
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        for _ in range(3):
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            assert response.status == 200
            response.read()
        conn.close()
