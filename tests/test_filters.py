"""Unit tests for the wavelet filter bank construction."""

from __future__ import annotations

from math import sqrt

import numpy as np
import pytest

from repro.wavelets.filters import (
    WaveletFilter,
    daubechies_filter,
    filter_for_degree,
    get_filter,
)


class TestDaubechiesConstruction:
    def test_haar_is_db1(self):
        f = daubechies_filter(1)
        assert f.name == "haar"
        np.testing.assert_allclose(f.lowpass, np.array([1.0, 1.0]) / sqrt(2.0))

    def test_db2_matches_closed_form(self):
        s = sqrt(3.0)
        expected = np.array([1 + s, 3 + s, 3 - s, 1 - s]) / (4 * sqrt(2.0))
        np.testing.assert_allclose(daubechies_filter(2).lowpass, expected, atol=1e-12)

    @pytest.mark.parametrize("p", range(1, 11))
    def test_length_is_two_p(self, p):
        assert daubechies_filter(p).length == 2 * p

    @pytest.mark.parametrize("p", range(1, 11))
    def test_lowpass_sums_to_sqrt2(self, p):
        assert abs(float(np.sum(daubechies_filter(p).lowpass)) - sqrt(2.0)) < 1e-9

    @pytest.mark.parametrize("p", range(1, 11))
    def test_unit_norm(self, p):
        h = daubechies_filter(p).lowpass
        assert abs(float(np.sum(h * h)) - 1.0) < 1e-9

    @pytest.mark.parametrize("p", range(1, 11))
    def test_double_shift_orthogonality(self, p):
        h = daubechies_filter(p).lowpass
        for m in range(1, p):
            assert abs(float(np.dot(h[: h.size - 2 * m], h[2 * m :]))) < 1e-9

    @pytest.mark.parametrize("p", range(1, 9))
    def test_vanishing_moments(self, p):
        """The highpass filter annihilates polynomials of degree < p."""
        g = daubechies_filter(p).highpass
        k = np.arange(g.size, dtype=np.float64)
        for degree in range(p):
            assert abs(float(np.sum(g * k**degree))) < 1e-7

    def test_extremal_phase_orientation(self):
        """Energy is concentrated in the leading taps (classical db family)."""
        for p in range(2, 8):
            h = daubechies_filter(p).lowpass
            front = float(np.sum(h[: h.size // 2] ** 2))
            assert front > 0.5

    def test_caching_returns_same_object(self):
        assert daubechies_filter(3) is daubechies_filter(3)

    @pytest.mark.parametrize("p", [0, -1, 17])
    def test_rejects_out_of_range_moments(self, p):
        with pytest.raises(ValueError):
            daubechies_filter(p)

    def test_rejects_non_integer(self):
        with pytest.raises(TypeError):
            daubechies_filter(2.0)


class TestHighpass:
    @pytest.mark.parametrize("p", range(1, 9))
    def test_quadrature_mirror_relation(self, p):
        f = daubechies_filter(p)
        signs = np.where(np.arange(f.length) % 2 == 0, 1.0, -1.0)
        np.testing.assert_allclose(f.highpass, signs * f.lowpass[::-1])

    @pytest.mark.parametrize("p", range(1, 9))
    def test_highpass_zero_mean(self, p):
        assert abs(float(np.sum(daubechies_filter(p).highpass))) < 1e-9

    @pytest.mark.parametrize("p", range(1, 9))
    def test_cross_orthogonality(self, p):
        f = daubechies_filter(p)
        h, g = f.lowpass, f.highpass
        for m in range(-(p - 1), p):
            shift = 2 * m
            if shift >= 0:
                dot = float(np.dot(h[: h.size - shift], g[shift:])) if shift < h.size else 0.0
            else:
                dot = float(np.dot(h[-shift:], g[: h.size + shift]))
            assert abs(dot) < 1e-9


class TestRegistry:
    def test_haar_name(self):
        assert get_filter("haar").name == "haar"
        assert get_filter("HAAR").name == "haar"
        assert get_filter("db1").name == "haar"

    def test_db_names(self):
        for p in range(2, 8):
            assert get_filter(f"db{p}").vanishing_moments == p

    def test_tap_count_alias(self):
        # The paper's "Db4" means 4 taps = 2 vanishing moments.
        assert get_filter("D4").vanishing_moments == 2
        assert get_filter("d8").vanishing_moments == 4

    def test_passthrough(self):
        f = daubechies_filter(3)
        assert get_filter(f) is f

    @pytest.mark.parametrize("name", ["dbx", "d3", "wavelet", "Dzz", ""])
    def test_rejects_unknown(self, name):
        with pytest.raises(ValueError):
            get_filter(name)

    def test_rejects_non_string(self):
        with pytest.raises(TypeError):
            get_filter(4)


class TestFilterForDegree:
    @pytest.mark.parametrize("degree,expected_p", [(0, 1), (1, 2), (2, 3), (3, 4)])
    def test_filter_length_2delta_plus_2(self, degree, expected_p):
        f = filter_for_degree(degree)
        assert f.vanishing_moments == expected_p
        assert f.length == 2 * degree + 2

    def test_rejects_negative_degree(self):
        with pytest.raises(ValueError):
            filter_for_degree(-1)

    def test_max_polynomial_degree(self):
        assert daubechies_filter(3).max_polynomial_degree() == 2


class TestValidation:
    def test_rejects_odd_length(self):
        with pytest.raises(ValueError):
            WaveletFilter(name="bad", lowpass=np.ones(3) / sqrt(3), vanishing_moments=1)

    def test_rejects_wrong_sum(self):
        with pytest.raises(ValueError):
            WaveletFilter(name="bad", lowpass=np.array([1.0, 0.0]), vanishing_moments=1)

    def test_rejects_non_orthogonal(self):
        taps = np.array([0.6, 0.6, 0.1, 0.1142135623])
        with pytest.raises(ValueError):
            WaveletFilter(name="bad", lowpass=taps, vanishing_moments=2)
