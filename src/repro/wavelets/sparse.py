"""Sparse vectors and tensors over the packed wavelet coefficient space.

Rewritten query vectors are sparse: a polynomial range-sum over a
hyper-rectangle is separable per monomial, so its wavelet transform is a sum
of outer products of *per-dimension* sparse vectors.  This module provides
the two container types used throughout:

:class:`SparseVector`
    A sparse 1-D vector over ``range(n)`` with sorted unique integer indices,
    backed by numpy arrays.
:class:`SparseTensor`
    A sparse d-dimensional array addressed by *flat* (C-order) indices into a
    power-of-two domain, built from outer products of sparse vectors and
    merged by summation.

Both are value types: operations return new instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.util import prod

#: Relative magnitude below which coefficients are treated as exact zeros.
DEFAULT_RTOL = 1e-12


@dataclass(frozen=True)
class SparseVector:
    """Sparse 1-D vector with sorted unique indices.

    Attributes
    ----------
    n:
        Logical length of the vector.
    indices:
        Sorted ``int64`` array of positions with nonzero values.
    values:
        ``float64`` array aligned with ``indices``.
    """

    n: int
    indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        indices = np.asarray(self.indices, dtype=np.int64)
        values = np.asarray(self.values, dtype=np.float64)
        if indices.ndim != 1 or values.ndim != 1 or indices.size != values.size:
            raise ValueError("indices and values must be 1-D arrays of equal size")
        if indices.size and (indices[0] < 0 or indices[-1] >= self.n):
            raise ValueError("indices out of range")
        if indices.size > 1 and np.any(np.diff(indices) <= 0):
            raise ValueError("indices must be strictly increasing")
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "values", values)

    @classmethod
    def from_dense(cls, dense: np.ndarray, rtol: float = DEFAULT_RTOL) -> "SparseVector":
        """Sparsify a dense vector, dropping entries below ``rtol * max|.|``."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 1:
            raise ValueError("expected a 1-D array")
        scale = float(np.max(np.abs(dense))) if dense.size else 0.0
        if scale == 0.0:
            return cls(n=dense.size, indices=np.empty(0, np.int64), values=np.empty(0))
        mask = np.abs(dense) > rtol * scale
        idx = np.nonzero(mask)[0].astype(np.int64)
        return cls(n=dense.size, indices=idx, values=dense[idx])

    @classmethod
    def from_items(
        cls, n: int, items: Iterable[tuple[int, float]], rtol: float = 0.0
    ) -> "SparseVector":
        """Build from ``(index, value)`` pairs; duplicate indices are summed."""
        pairs = list(items)
        if not pairs:
            return cls(n=n, indices=np.empty(0, np.int64), values=np.empty(0))
        idx = np.array([p[0] for p in pairs], dtype=np.int64)
        val = np.array([p[1] for p in pairs], dtype=np.float64)
        uniq, inverse = np.unique(idx, return_inverse=True)
        summed = np.bincount(inverse, weights=val, minlength=uniq.size)
        if rtol > 0.0 and summed.size:
            scale = float(np.max(np.abs(summed)))
            keep = np.abs(summed) > rtol * scale
            uniq, summed = uniq[keep], summed[keep]
        return cls(n=n, indices=uniq, values=summed)

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return int(self.indices.size)

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense numpy vector."""
        dense = np.zeros(self.n, dtype=np.float64)
        dense[self.indices] = self.values
        return dense

    def dot_dense(self, dense: np.ndarray) -> float:
        """Inner product with a dense vector of length ``n``."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.shape != (self.n,):
            raise ValueError(f"expected a vector of length {self.n}")
        return float(dense[self.indices] @ self.values)

    def scaled(self, factor: float) -> "SparseVector":
        """Return ``factor * self``."""
        return SparseVector(n=self.n, indices=self.indices, values=self.values * factor)

    def items(self) -> Iterator[tuple[int, float]]:
        """Iterate ``(index, value)`` pairs."""
        for i, v in zip(self.indices.tolist(), self.values.tolist()):
            yield i, v

    def norm2(self) -> float:
        """Euclidean norm."""
        return float(np.sqrt(np.sum(self.values**2)))


@dataclass(frozen=True)
class SparseTensor:
    """Sparse d-dimensional array addressed by flat C-order indices.

    ``indices`` are sorted and unique; ``values`` are aligned.  Use
    :meth:`from_outer` for a separable (rank-1) tensor and :meth:`sum_of` to
    merge several tensors (e.g. one per monomial of a query polynomial).
    """

    shape: tuple[int, ...]
    indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        shape = tuple(int(s) for s in self.shape)
        indices = np.asarray(self.indices, dtype=np.int64)
        values = np.asarray(self.values, dtype=np.float64)
        if indices.ndim != 1 or values.ndim != 1 or indices.size != values.size:
            raise ValueError("indices and values must be 1-D arrays of equal size")
        size = prod(shape)
        if indices.size and (indices[0] < 0 or indices[-1] >= size):
            raise ValueError("flat indices out of range")
        if indices.size > 1 and np.any(np.diff(indices) <= 0):
            raise ValueError("flat indices must be strictly increasing")
        object.__setattr__(self, "shape", shape)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "values", values)

    @classmethod
    def from_outer(cls, factors: Sequence[SparseVector]) -> "SparseTensor":
        """Outer product of per-dimension sparse vectors.

        The resulting support is the Cartesian product of the factor
        supports; values are products of factor values.  This is exactly how
        a separable query vector transforms under the tensor-product DWT.
        """
        if not factors:
            raise ValueError("need at least one factor")
        shape = tuple(f.n for f in factors)
        if any(f.nnz == 0 for f in factors):
            return cls(shape=shape, indices=np.empty(0, np.int64), values=np.empty(0))
        flat = factors[0].indices.astype(np.int64)
        vals = factors[0].values.copy()
        for f in factors[1:]:
            flat = (flat[:, None] * f.n + f.indices[None, :]).ravel()
            vals = (vals[:, None] * f.values[None, :]).ravel()
        order = np.argsort(flat, kind="stable")
        return cls(shape=shape, indices=flat[order], values=vals[order])

    @classmethod
    def sum_of(
        cls, tensors: Sequence["SparseTensor"], rtol: float = DEFAULT_RTOL
    ) -> "SparseTensor":
        """Sum several tensors over the same shape, merging duplicates."""
        if not tensors:
            raise ValueError("need at least one tensor")
        shape = tensors[0].shape
        for t in tensors[1:]:
            if t.shape != shape:
                raise ValueError("all tensors must share a shape")
        if len(tensors) == 1:
            return tensors[0]
        flat = np.concatenate([t.indices for t in tensors])
        vals = np.concatenate([t.values for t in tensors])
        uniq, inverse = np.unique(flat, return_inverse=True)
        summed = np.bincount(inverse, weights=vals, minlength=uniq.size)
        if rtol > 0.0 and summed.size:
            scale = float(np.max(np.abs(summed)))
            if scale > 0.0:
                keep = np.abs(summed) > rtol * scale
                uniq, summed = uniq[keep], summed[keep]
        return cls(shape=shape, indices=uniq, values=summed)

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return int(self.indices.size)

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense numpy array."""
        dense = np.zeros(self.shape, dtype=np.float64)
        dense.ravel()[self.indices] = self.values
        return dense

    def dot_dense(self, dense: np.ndarray) -> float:
        """Inner product with a dense array of matching shape."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.shape != self.shape:
            raise ValueError(f"expected an array of shape {self.shape}")
        return float(dense.ravel()[self.indices] @ self.values)

    def multi_indices(self) -> np.ndarray:
        """Return the support as an ``(nnz, ndim)`` array of multi-indices."""
        return np.stack(np.unravel_index(self.indices, self.shape), axis=-1)

    def scaled(self, factor: float) -> "SparseTensor":
        """Return ``factor * self``."""
        return SparseTensor(shape=self.shape, indices=self.indices, values=self.values * factor)

    def norm2(self) -> float:
        """Euclidean (Frobenius) norm."""
        return float(np.sqrt(np.sum(self.values**2)))
