"""Wall-clock tracing spans with a Chrome-trace exporter.

``span("rewrite.cascade", n=4096)`` is a context manager that records a
complete-event (begin + duration) into a bounded ring buffer.  Tracing is
off by default — a disabled span is one boolean check on ``__enter__``
and one on ``__exit__`` — and is switched on per run via
:func:`set_tracing` (the CLI's ``--trace-out`` flag does this for you).

The recorder exports the standard Chrome trace-event JSON format, so a
captured run drops straight into ``chrome://tracing`` / Perfetto:
nested spans on one thread render as a flame graph, concurrent service
threads render as parallel tracks.

Cross-process collection: spans recorded inside process-pool workers
(cascade rewrites, factor precompute) would die in the worker's own ring.
Workers therefore ship their spans back through the pool future results
as portable tuples (:func:`export_portable`, timestamps re-anchored to
the wall-clock epoch) and the parent merges them with
:func:`absorb_portable` — they keep the worker's pid, so a ``workers>1``
trace shows the pool as separate process tracks.  Long-lived shard
workers use :func:`drain_portable` instead (export + clear in one lock
hold), so periodic telemetry pulls never ship a span twice, and the
absorbing side can name the foreign lane with
:meth:`TraceRecorder.set_process_name` (``repro-shard-0`` instead of the
anonymous ``repro-worker-<pid>``).

Cross-process *request* correlation: :class:`trace_context` binds a
request id to the current thread; every span completed while a context
is bound carries a ``request_id`` attribute.  The HTTP edge opens a
context per request, the shard pipe protocol forwards the bound id with
every command, and the worker re-binds it around command execution — so
one submit/advance renders as a single filterable flamegraph spanning
the edge, the router, and every shard process it touched.

The ring drops the *oldest* span on overflow; every drop increments the
``repro_trace_spans_dropped_total`` counter and the recorder's
:attr:`~TraceRecorder.dropped` tally, so a truncated trace is visible
instead of silently partial.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque

from repro.obs.metrics import REGISTRY

_SPANS_DROPPED = REGISTRY.counter(
    "repro_trace_spans_dropped_total",
    "Spans evicted from the bounded trace ring (oldest-first overflow)",
)


class SpanRecord:
    """One completed span: name, microsecond start/duration, thread, attrs.

    ``pid`` is None for spans recorded in this process; spans absorbed
    from pool workers carry the worker's pid.
    """

    __slots__ = ("name", "ts_us", "dur_us", "tid", "attrs", "pid")

    def __init__(
        self,
        name: str,
        ts_us: float,
        dur_us: float,
        tid: int,
        attrs: dict,
        pid: int | None = None,
    ) -> None:
        self.name = name
        self.ts_us = ts_us
        self.dur_us = dur_us
        self.tid = tid
        self.attrs = attrs
        self.pid = pid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanRecord({self.name!r}, ts_us={self.ts_us:.1f}, "
            f"dur_us={self.dur_us:.1f}, tid={self.tid}, attrs={self.attrs}, "
            f"pid={self.pid})"
        )


class TraceRecorder:
    """A thread-safe ring buffer of completed spans.

    The ring bounds memory no matter how long a traced run goes: with the
    default 65536-span capacity the oldest spans fall off first, and the
    :attr:`dropped` counter says how many did.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("trace ring capacity must be positive")
        self._buffer: deque[SpanRecord] = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self._tids: dict[int, tuple[int, str]] = {}
        self._process_names: dict[int, str] = {}
        self._dropped = 0

    @property
    def capacity(self) -> int:
        return self._buffer.maxlen or 0

    @property
    def dropped(self) -> int:
        """Spans evicted by ring overflow since the last :meth:`clear`."""
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)

    def _append(self, record: SpanRecord) -> None:
        """Append under the lock, counting the eviction if the ring is full."""
        if len(self._buffer) == self._buffer.maxlen:
            self._dropped += 1
            _SPANS_DROPPED.inc()
        self._buffer.append(record)

    def record(self, record: SpanRecord) -> None:
        with self._lock:
            self._append(record)

    def add(self, name: str, ts_us: float, dur_us: float, attrs: dict) -> None:
        """Record a span for the calling thread (one lock acquisition)."""
        ident = threading.get_ident()
        with self._lock:
            entry = self._tids.get(ident)
            if entry is None:
                entry = (len(self._tids), threading.current_thread().name)
                self._tids[ident] = entry
            self._append(SpanRecord(name, ts_us, dur_us, entry[0], attrs))

    def records(self) -> list[SpanRecord]:
        with self._lock:
            return list(self._buffer)

    def set_process_name(self, pid: int, name: str) -> None:
        """Name a foreign pid's lane in the Chrome export (e.g. a shard).

        Absorbed spans keep their worker's pid; without a name the lane
        renders as ``repro-worker-<pid>``.  The cluster router names its
        shard lanes ``repro-shard-<index>`` when it federates telemetry.
        """
        with self._lock:
            self._process_names[int(pid)] = str(name)

    def clear(self) -> None:
        with self._lock:
            self._buffer.clear()
            self._tids.clear()
            self._process_names.clear()
            self._dropped = 0

    # -- exposition ----------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """The ``chrome://tracing`` / Perfetto JSON object format."""
        local_pid = os.getpid()
        with self._lock:
            records = list(self._buffer)
            tids = dict(self._tids)
            process_names = dict(self._process_names)
        events: list[dict] = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": local_pid,
                "tid": track,
                "args": {"name": thread_name},
            }
            for track, thread_name in sorted(tids.values())
        ]
        foreign_pids: set[int] = set()
        for rec in records:
            pid = local_pid if rec.pid is None else rec.pid
            if rec.pid is not None and rec.pid != local_pid:
                foreign_pids.add(rec.pid)
            events.append(
                {
                    "name": rec.name,
                    "ph": "X",
                    "ts": rec.ts_us,
                    "dur": rec.dur_us,
                    "pid": pid,
                    "tid": rec.tid,
                    "args": rec.attrs,
                }
            )
        process_meta = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": process_names.get(pid, f"repro-worker-{pid}")},
            }
            for pid in sorted(foreign_pids)
        ]
        if process_meta:
            process_meta.insert(
                0,
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": local_pid,
                    "tid": 0,
                    "args": {"name": "repro"},
                },
            )
        return {
            "traceEvents": events[: len(tids)] + process_meta + events[len(tids) :],
            "displayTimeUnit": "ms",
        }

    def export(self, path) -> int:
        """Write the Chrome trace JSON to ``path``; returns the span count."""
        trace = self.to_chrome_trace()
        with open(path, "w") as fh:
            json.dump(trace, fh, default=str)
        return sum(1 for e in trace["traceEvents"] if e["ph"] == "X")


_enabled = False
_recorder = TraceRecorder()
#: perf_counter origin for microsecond timestamps (per-process, monotonic).
_T0 = time.perf_counter()


def _anchor_us() -> float:
    """Microseconds between the Unix epoch and this process's span origin.

    ``span.ts_us + _anchor_us()`` is an epoch-based timestamp — the
    process-independent form worker spans are shipped in.  Computed per
    call (cheap: two clock reads) so a forked worker does not reuse the
    parent's cached offset.
    """
    return (time.time() - time.perf_counter() + _T0) * 1e6


def set_tracing(enabled: bool, capacity: int | None = None) -> bool:
    """Turn span recording on or off; returns the previous state.

    ``capacity`` (spans kept) replaces the recorder ring when given —
    existing records are dropped.
    """
    global _enabled, _recorder
    previous = _enabled
    if capacity is not None:
        _recorder = TraceRecorder(capacity)
    _enabled = bool(enabled)
    return previous


def tracing_enabled() -> bool:
    return _enabled


def get_recorder() -> TraceRecorder:
    """The active trace ring (swapped by ``set_tracing(capacity=...)``)."""
    return _recorder


# ----------------------------------------------------------------------
# Request-scoped trace context
# ----------------------------------------------------------------------

_context = threading.local()


class trace_context:
    """Bind a request id to the current thread for the enclosed region.

    Every span that *completes* while a context is bound carries a
    ``request_id`` attribute, which is what lets a Chrome trace be
    filtered down to one end-to-end request across the edge, the router,
    and the shard workers.  Contexts nest (a stack per thread); binding
    ``None`` is a no-op marker that keeps call sites unconditional.

    Thread-scoped on purpose: the HTTP edge binds it inside the worker
    thread that runs the router call (never across an ``await``), and the
    shard pipe protocol re-binds the forwarded id in the worker process.
    """

    __slots__ = ("_request_id",)

    def __init__(self, request_id: str | None) -> None:
        self._request_id = request_id

    def __enter__(self) -> "trace_context":
        stack = getattr(_context, "stack", None)
        if stack is None:
            stack = _context.stack = []
        stack.append(self._request_id)
        return self

    def __exit__(self, *exc) -> bool:
        _context.stack.pop()
        return False


def current_request_id() -> str | None:
    """The innermost non-None request id bound to this thread, or None."""
    stack = getattr(_context, "stack", None)
    if not stack:
        return None
    for request_id in reversed(stack):
        if request_id is not None:
            return request_id
    return None


# ----------------------------------------------------------------------
# Cross-process span shipping
# ----------------------------------------------------------------------


def export_portable() -> list[tuple]:
    """The recorder's spans as process-independent tuples.

    Each tuple is ``(name, epoch_ts_us, dur_us, pid, tid, attrs)`` —
    timestamps re-anchored to the wall-clock epoch so the parent can
    place them on its own timeline.  Pool workers call this after a
    traced task and return the result through the future.
    """
    anchor = _anchor_us()
    pid = os.getpid()
    return [
        (rec.name, rec.ts_us + anchor, rec.dur_us, pid, rec.tid, rec.attrs)
        for rec in _recorder.records()
    ]


def drain_portable() -> list[tuple]:
    """Export the recorder's spans portably and clear the ring.

    The federation form of :func:`export_portable`: a long-lived shard
    worker answers periodic telemetry pulls, so it must hand each span
    over exactly once — export and clear happen before returning, and the
    next pull starts from an empty ring.
    """
    spans = export_portable()
    _recorder.clear()
    return spans


def absorb_portable(spans) -> int:
    """Merge portable worker spans into this process's recorder.

    Timestamps are re-anchored from the epoch back to this process's
    span origin, so worker spans line up with the parent's own spans in
    one Chrome trace; the worker's pid is kept, so the pool renders as
    separate process tracks.  Returns the number of spans absorbed.
    """
    anchor = _anchor_us()
    count = 0
    for name, epoch_us, dur_us, pid, tid, attrs in spans:
        _recorder.record(
            SpanRecord(name, epoch_us - anchor, dur_us, tid, attrs, pid=pid)
        )
        count += 1
    return count


class span:
    """Context manager timing one named region of the pipeline.

    Keyword attributes land in the Chrome trace's ``args`` panel.  When
    tracing is disabled (the default) enter/exit are a boolean check
    each, so instrumented hot paths cost nothing measurable.
    """

    __slots__ = ("name", "attrs", "_t0")

    def __init__(self, name: str, **attrs: object) -> None:
        self.name = name
        self.attrs = attrs
        self._t0: float | None = None

    def __enter__(self) -> "span":
        if _enabled:
            self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        t0 = self._t0
        if t0 is not None and _enabled:
            t1 = time.perf_counter()
            attrs = self.attrs
            request_id = current_request_id()
            if request_id is not None:
                attrs = dict(attrs, request_id=request_id)
            _recorder.add(
                self.name,
                ts_us=(t0 - _T0) * 1e6,
                dur_us=(t1 - t0) * 1e6,
                attrs=attrs,
            )
        return False
