"""Structural error penalty functions (Section 4).

Definition 2: a *structural error penalty function* is a non-negative,
homogeneous, convex, even function ``p`` of the error vector with
``p(0) = 0``.  The special case of a *quadratic* penalty is a PSD quadratic
form ``p(e) = e^T A e``.

Definition 3 ties penalties to progression orders: the importance of a
wavelet ``xi`` is the penalty applied to the column of query coefficients,

    iota_p(xi) = p(q0_hat[xi], ..., q_{s-1}_hat[xi]),

so every penalty here doubles as an importance function.  The
``importance_entries`` method evaluates ``iota_p`` for *every* master-list
key at once from the flattened (key, query, value) entry arrays that
:class:`~repro.core.plan.QueryPlan` maintains — the batch sizes in the
paper's experiments make a per-key Python loop infeasible.

Quadratic penalties are represented by a factor matrix ``M`` with
``p(e) = ||M e||**2`` (so ``A = M^T M`` is automatically PSD).  All the
paper's examples have *sparse* factors — identity for SSE, diagonal for
cursored SSE, the banded graph Laplacian for the local-extrema penalty —
which keeps the vectorized importance computation linear in the number of
plan entries.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np


class Penalty(ABC):
    """A structural error penalty function, usable as an importance function."""

    #: Degree of homogeneity alpha: p(c*e) == |c|**alpha * p(e).
    homogeneity: float = 2.0

    @abstractmethod
    def __call__(self, error: np.ndarray) -> float:
        """Evaluate the penalty on an error vector."""

    def column_importance(self, column: np.ndarray) -> float:
        """``iota_p`` of one dense coefficient column (Definition 3)."""
        return self(np.asarray(column, dtype=np.float64))

    @abstractmethod
    def importance_entries(
        self,
        entry_key_pos: np.ndarray,
        entry_qid: np.ndarray,
        entry_val: np.ndarray,
        num_keys: int,
        batch_size: int,
    ) -> np.ndarray:
        """``iota_p`` for every key of a plan, from flattened entries.

        ``entry_key_pos[e]`` is the key index, ``entry_qid[e]`` the query
        index, and ``entry_val[e]`` the coefficient ``q_hat[qid][key]`` of
        entry ``e``.  Returns an array of length ``num_keys``.
        """

    @property
    def is_quadratic(self) -> bool:
        """True if the penalty is a PSD quadratic form (Theorem 2 applies)."""
        return isinstance(self, QuadraticPenalty)


class QuadraticPenalty(Penalty):
    """``p(e) = ||M e||**2`` for a (sparse) factor matrix ``M``.

    The factor is stored column-compressed: column ``q`` of ``M`` occupies
    ``rows[col_ptr[q]:col_ptr[q+1]]`` / ``vals[col_ptr[q]:col_ptr[q+1]]``.
    """

    homogeneity = 2.0

    def __init__(
        self,
        batch_size: int,
        num_rows: int,
        col_ptr: np.ndarray,
        rows: np.ndarray,
        vals: np.ndarray,
    ) -> None:
        self.batch_size = int(batch_size)
        self.num_rows = int(num_rows)
        self.col_ptr = np.asarray(col_ptr, dtype=np.int64)
        self.rows = np.asarray(rows, dtype=np.int64)
        self.vals = np.asarray(vals, dtype=np.float64)
        if self.col_ptr.shape != (self.batch_size + 1,):
            raise ValueError("col_ptr must have batch_size + 1 entries")
        if self.rows.shape != self.vals.shape:
            raise ValueError("rows and vals must align")

    @classmethod
    def from_factor(cls, factor: np.ndarray, tol: float = 0.0) -> "QuadraticPenalty":
        """Build from a dense factor matrix ``M`` (``p(e) = ||M e||**2``)."""
        factor = np.asarray(factor, dtype=np.float64)
        if factor.ndim != 2:
            raise ValueError("factor must be a matrix")
        num_rows, batch_size = factor.shape
        col_ptr = [0]
        rows: list[int] = []
        vals: list[float] = []
        for q in range(batch_size):
            col = factor[:, q]
            nz = np.nonzero(np.abs(col) > tol)[0]
            rows.extend(int(r) for r in nz)
            vals.extend(float(col[r]) for r in nz)
            col_ptr.append(len(rows))
        return cls(
            batch_size=batch_size,
            num_rows=num_rows,
            col_ptr=np.array(col_ptr),
            rows=np.array(rows, dtype=np.int64),
            vals=np.array(vals, dtype=np.float64),
        )

    def factor_dense(self) -> np.ndarray:
        """Materialize ``M`` densely (tests and small batches)."""
        out = np.zeros((self.num_rows, self.batch_size))
        for q in range(self.batch_size):
            sl = slice(self.col_ptr[q], self.col_ptr[q + 1])
            out[self.rows[sl], q] = self.vals[sl]
        return out

    def form_matrix(self) -> np.ndarray:
        """The PSD form ``A = M^T M`` (dense; tests and Theorem 2 checks)."""
        factor = self.factor_dense()
        return factor.T @ factor

    def __call__(self, error: np.ndarray) -> float:
        error = np.asarray(error, dtype=np.float64)
        if error.shape != (self.batch_size,):
            raise ValueError(f"expected an error vector of length {self.batch_size}")
        out = np.zeros(self.num_rows)
        for q in np.nonzero(error)[0]:
            sl = slice(self.col_ptr[q], self.col_ptr[q + 1])
            out[self.rows[sl]] += self.vals[sl] * error[q]
        return float(np.sum(out * out))

    def importance_entries(
        self,
        entry_key_pos: np.ndarray,
        entry_qid: np.ndarray,
        entry_val: np.ndarray,
        num_keys: int,
        batch_size: int,
    ) -> np.ndarray:
        if batch_size != self.batch_size:
            raise ValueError(
                f"penalty was built for batches of {self.batch_size}, got {batch_size}"
            )
        entry_key_pos = np.asarray(entry_key_pos, dtype=np.int64)
        entry_qid = np.asarray(entry_qid, dtype=np.int64)
        entry_val = np.asarray(entry_val, dtype=np.float64)
        # Expand each entry e into the nonzeros of M's column entry_qid[e]:
        # contribution M[r, q_e] * v_e accumulates into (key_e, r), and
        # iota(key) = sum_r (accumulated[key, r])**2.
        counts = (self.col_ptr[entry_qid + 1] - self.col_ptr[entry_qid]).astype(np.int64)
        total = int(counts.sum())
        if total == 0:
            return np.zeros(num_keys)
        rep = np.repeat(np.arange(entry_qid.size), counts)
        starts = self.col_ptr[entry_qid]
        before = np.cumsum(counts) - counts
        offsets = np.repeat(starts, counts) + np.arange(total) - np.repeat(before, counts)
        contrib = self.vals[offsets] * entry_val[rep]
        combo = entry_key_pos[rep] * np.int64(self.num_rows) + self.rows[offsets]
        uniq, inverse = np.unique(combo, return_inverse=True)
        sums = np.bincount(inverse, weights=contrib, minlength=uniq.size)
        return np.bincount(
            (uniq // self.num_rows).astype(np.int64),
            weights=sums * sums,
            minlength=num_keys,
        )


class SsePenalty(QuadraticPenalty):
    """Sum of square errors: ``p(e) = sum |e_i|**2`` (penalty P1).

    The identity factor is implicit, so one instance works for any batch
    size.  For matrix-level introspection (``form_matrix`` etc.) use
    ``WeightedSsePenalty(np.ones(batch_size))`` instead.
    """

    def __init__(self) -> None:
        pass

    def factor_dense(self) -> np.ndarray:
        raise NotImplementedError(
            "SsePenalty is batch-size agnostic; use WeightedSsePenalty(np.ones(s))"
        )

    def __call__(self, error: np.ndarray) -> float:
        error = np.asarray(error, dtype=np.float64)
        return float(np.sum(error * error))

    def importance_entries(
        self, entry_key_pos, entry_qid, entry_val, num_keys, batch_size
    ) -> np.ndarray:
        entry_key_pos = np.asarray(entry_key_pos, dtype=np.int64)
        entry_val = np.asarray(entry_val, dtype=np.float64)
        return np.bincount(entry_key_pos, weights=entry_val**2, minlength=num_keys)


class WeightedSsePenalty(QuadraticPenalty):
    """``p(e) = sum w_i |e_i|**2`` with non-negative weights."""

    def __init__(self, weights: Sequence[float]) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1:
            raise ValueError("weights must be a vector")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        self.weights = weights
        idx = np.arange(weights.size, dtype=np.int64)
        super().__init__(
            batch_size=weights.size,
            num_rows=weights.size,
            col_ptr=np.arange(weights.size + 1, dtype=np.int64),
            rows=idx,
            vals=np.sqrt(weights),
        )

    def __call__(self, error: np.ndarray) -> float:
        error = np.asarray(error, dtype=np.float64)
        if error.shape != self.weights.shape:
            raise ValueError(f"expected an error vector of length {self.weights.size}")
        return float(np.sum(self.weights * error * error))

    def importance_entries(
        self, entry_key_pos, entry_qid, entry_val, num_keys, batch_size
    ) -> np.ndarray:
        if batch_size != self.weights.size:
            raise ValueError(
                f"penalty was built for batches of {self.weights.size}, got {batch_size}"
            )
        entry_key_pos = np.asarray(entry_key_pos, dtype=np.int64)
        entry_qid = np.asarray(entry_qid, dtype=np.int64)
        entry_val = np.asarray(entry_val, dtype=np.float64)
        return np.bincount(
            entry_key_pos,
            weights=self.weights[entry_qid] * entry_val**2,
            minlength=num_keys,
        )


class CursoredSsePenalty(WeightedSsePenalty):
    """Penalty P2: high-priority cells weighted more than the rest.

    "Minimize a cursored sum of square errors that makes the high-priority
    cells (say) 10 times more important than the other cells" — Section 4.
    """

    def __init__(
        self,
        batch_size: int,
        high_priority: Sequence[int],
        high_weight: float = 10.0,
        low_weight: float = 1.0,
    ) -> None:
        weights = np.full(int(batch_size), float(low_weight))
        high = np.asarray(list(high_priority), dtype=np.int64)
        if high.size and (high.min() < 0 or high.max() >= batch_size):
            raise ValueError("high-priority index outside the batch")
        weights[high] = float(high_weight)
        super().__init__(weights)
        self.high_priority = frozenset(int(i) for i in high)


class LaplacianPenalty(QuadraticPenalty):
    """Penalty P3: SSE of the discrete Laplacian of the result vector.

    Penalizes false local extrema: ``p(e) = ||L e||**2`` where ``L`` is the
    graph Laplacian of a neighbor structure on the batch's queries.
    """

    def __init__(self, laplacian: np.ndarray) -> None:
        laplacian = np.asarray(laplacian, dtype=np.float64)
        if laplacian.ndim != 2 or laplacian.shape[0] != laplacian.shape[1]:
            raise ValueError("laplacian must be square")
        penalty = QuadraticPenalty.from_factor(laplacian)
        super().__init__(
            batch_size=penalty.batch_size,
            num_rows=penalty.num_rows,
            col_ptr=penalty.col_ptr,
            rows=penalty.rows,
            vals=penalty.vals,
        )

    @classmethod
    def chain(cls, batch_size: int) -> "LaplacianPenalty":
        """Path-graph Laplacian: queries in reading order are neighbors."""
        if batch_size < 2:
            raise ValueError("chain Laplacian needs at least two queries")
        lap = np.zeros((batch_size, batch_size))
        for i in range(batch_size - 1):
            lap[i, i] += 1.0
            lap[i + 1, i + 1] += 1.0
            lap[i, i + 1] -= 1.0
            lap[i + 1, i] -= 1.0
        return cls(lap)

    @classmethod
    def grid(cls, grid_shape: Sequence[int]) -> "LaplacianPenalty":
        """Grid-graph Laplacian for queries arranged as a C-order grid."""
        grid_shape = tuple(int(g) for g in grid_shape)
        size = int(np.prod(grid_shape))
        lap = np.zeros((size, size))
        for flat in range(size):
            coords = np.unravel_index(flat, grid_shape)
            for d, g in enumerate(grid_shape):
                if coords[d] + 1 < g:
                    nb = list(coords)
                    nb[d] += 1
                    other = int(np.ravel_multi_index(nb, grid_shape))
                    lap[flat, flat] += 1.0
                    lap[other, other] += 1.0
                    lap[flat, other] -= 1.0
                    lap[other, flat] -= 1.0
        return cls(lap)

    @classmethod
    def from_edges(cls, batch_size: int, edges: Sequence[tuple[int, int]]) -> "LaplacianPenalty":
        """Laplacian of an arbitrary neighbor graph over query indices."""
        lap = np.zeros((int(batch_size), int(batch_size)))
        for a, b in edges:
            if a == b:
                raise ValueError("self-loops are not allowed")
            lap[a, a] += 1.0
            lap[b, b] += 1.0
            lap[a, b] -= 1.0
            lap[b, a] -= 1.0
        return cls(lap)


class DifferencePenalty(QuadraticPenalty):
    """SSE of neighboring-cell differences: ``p(e) = sum (e_i - e_j)**2``.

    The introduction's motivating structural error: a user hunting for
    "large cell to cell changes in a measure" cares about the error of the
    *differences* between neighboring results, not the absolute values.
    ``p(e) = ||D e||**2`` where ``D`` maps results to neighbor differences.
    A constant offset on every result is free (the penalty is semi-definite
    — precisely the flexibility Definition 2 calls out).
    """

    def __init__(self, batch_size: int, edges: Sequence[tuple[int, int]] | None = None) -> None:
        batch_size = int(batch_size)
        if batch_size < 2:
            raise ValueError("difference penalty needs at least two queries")
        if edges is None:
            edges = [(i, i + 1) for i in range(batch_size - 1)]
        rows_count = len(edges)
        diff = np.zeros((rows_count, batch_size))
        for r, (a, b) in enumerate(edges):
            if a == b:
                raise ValueError("self-differences are not allowed")
            if not (0 <= a < batch_size and 0 <= b < batch_size):
                raise ValueError(f"edge ({a}, {b}) outside the batch")
            diff[r, a] = 1.0
            diff[r, b] = -1.0
        penalty = QuadraticPenalty.from_factor(diff)
        super().__init__(
            batch_size=penalty.batch_size,
            num_rows=penalty.num_rows,
            col_ptr=penalty.col_ptr,
            rows=penalty.rows,
            vals=penalty.vals,
        )
        self.edges = tuple((int(a), int(b)) for a, b in edges)


class QuadraticFormPenalty(QuadraticPenalty):
    """An arbitrary PSD quadratic form ``p(e) = e^T A e``.

    The factor ``M`` with ``A = M^T M`` is recovered by eigendecomposition;
    tiny negative eigenvalues from roundoff are clipped to zero, and truly
    negative ones are rejected (the form must be positive semi-definite —
    Definition 2 requires it, and Theorems 1-2 rely on it).
    """

    def __init__(self, form: np.ndarray, eig_tol: float = 1e-10) -> None:
        form = np.asarray(form, dtype=np.float64)
        if form.ndim != 2 or form.shape[0] != form.shape[1]:
            raise ValueError("form must be a square matrix")
        if not np.allclose(form, form.T, atol=1e-10):
            raise ValueError("form must be symmetric (Hermitian)")
        eigvals, eigvecs = np.linalg.eigh(form)
        scale = max(1.0, float(np.max(np.abs(eigvals))))
        if np.any(eigvals < -eig_tol * scale):
            raise ValueError("form must be positive semi-definite")
        eigvals = np.clip(eigvals, 0.0, None)
        factor = (np.sqrt(eigvals)[:, None]) * eigvecs.T
        penalty = QuadraticPenalty.from_factor(factor, tol=1e-14)
        super().__init__(
            batch_size=penalty.batch_size,
            num_rows=penalty.num_rows,
            col_ptr=penalty.col_ptr,
            rows=penalty.rows,
            vals=penalty.vals,
        )
        self.form = form

    def __call__(self, error: np.ndarray) -> float:
        error = np.asarray(error, dtype=np.float64)
        return float(error @ self.form @ error)


class LpPenalty(Penalty):
    """The Lp norm as a penalty (Corollary 1), homogeneous of degree 1."""

    homogeneity = 1.0

    def __init__(self, p: float) -> None:
        if not (p >= 1.0):
            raise ValueError(f"Lp penalty needs p >= 1, got {p}")
        self.p = float(p)

    def __call__(self, error: np.ndarray) -> float:
        error = np.asarray(error, dtype=np.float64)
        if np.isinf(self.p):
            return float(np.max(np.abs(error))) if error.size else 0.0
        return float(np.sum(np.abs(error) ** self.p) ** (1.0 / self.p))

    def importance_entries(
        self, entry_key_pos, entry_qid, entry_val, num_keys, batch_size
    ) -> np.ndarray:
        entry_key_pos = np.asarray(entry_key_pos, dtype=np.int64)
        entry_val = np.asarray(entry_val, dtype=np.float64)
        if np.isinf(self.p):
            out = np.zeros(num_keys)
            np.maximum.at(out, entry_key_pos, np.abs(entry_val))
            return out
        sums = np.bincount(
            entry_key_pos, weights=np.abs(entry_val) ** self.p, minlength=num_keys
        )
        return sums ** (1.0 / self.p)


class CombinedPenalty(Penalty):
    """A non-negative linear combination of penalties.

    "Linear combinations of quadratic penalty functions are still quadratic
    penalty functions, allowing them to be mixed arbitrarily" — Section 4.
    All terms must share the same homogeneity degree so the combination is
    itself homogeneous (as Definition 2 requires).
    """

    def __init__(self, terms: Sequence[tuple[float, Penalty]]) -> None:
        terms = [(float(w), p) for w, p in terms]
        if not terms:
            raise ValueError("need at least one term")
        if any(w < 0 for w, _ in terms):
            raise ValueError("weights must be non-negative")
        degrees = {p.homogeneity for _, p in terms}
        if len(degrees) != 1:
            raise ValueError(
                "all combined penalties must share a homogeneity degree; "
                f"got {sorted(degrees)}"
            )
        self.terms = terms
        self.homogeneity = degrees.pop()

    def __call__(self, error: np.ndarray) -> float:
        return float(sum(w * p(error) for w, p in self.terms))

    def importance_entries(
        self, entry_key_pos, entry_qid, entry_val, num_keys, batch_size
    ) -> np.ndarray:
        out = np.zeros(num_keys)
        for w, p in self.terms:
            out += w * p.importance_entries(
                entry_key_pos, entry_qid, entry_val, num_keys, batch_size
            )
        return out

    @property
    def is_quadratic(self) -> bool:
        return all(p.is_quadratic for _, p in self.terms)
