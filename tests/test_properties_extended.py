"""Property-based tests for the extension substrates.

Covers the invariants of the modules added beyond the paper's core:
nonstandard decomposition, blocked prefix sums, derived batches, the
progressive session, and certified intervals.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import BatchBiggestB
from repro.core.session import ProgressiveSession
from repro.core.synopsis import DataSynopsis
from repro.core.topk import ProgressiveRanker
from repro.queries.derived import DerivedBatch
from repro.queries.range import HyperRect
from repro.queries.vector_query import QueryBatch, VectorQuery
from repro.storage.local_prefix_sum import LocalPrefixSumStorage
from repro.storage.nonstandard_store import NonstandardWaveletStorage
from repro.storage.wavelet_store import WaveletStorage
from repro.wavelets.nonstandard import ns_wavedec, ns_waverec


@st.composite
def square_data(draw, sizes=(4, 8, 16)):
    n = draw(st.sampled_from(sizes))
    seed = draw(st.integers(0, 2**32 - 1))
    return np.random.default_rng(seed).random((n, n))


@st.composite
def rect_in(draw, n: int):
    lo0 = draw(st.integers(0, n - 1))
    hi0 = draw(st.integers(lo0, n - 1))
    lo1 = draw(st.integers(0, n - 1))
    hi1 = draw(st.integers(lo1, n - 1))
    return HyperRect.from_bounds([(lo0, hi0), (lo1, hi1)])


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_nonstandard_roundtrip_and_parseval(data):
    arr = data.draw(square_data())
    filt = data.draw(st.sampled_from(["haar", "db2"]))
    coeffs = ns_wavedec(arr, filt)
    np.testing.assert_allclose(ns_waverec(coeffs, arr.shape, filt), arr, atol=1e-9)
    np.testing.assert_allclose(
        float(np.sum(coeffs**2)), float(np.sum(arr**2)), rtol=1e-9
    )


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_nonstandard_storage_exact(data):
    arr = data.draw(square_data(sizes=(8, 16)))
    n = arr.shape[0]
    rect = data.draw(rect_in(n))
    store = NonstandardWaveletStorage.build(arr, wavelet="haar")
    q = VectorQuery.count(rect)
    assert abs(store.answer(q, counted=False) - q.evaluate_dense(arr)) < 1e-7


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_local_prefix_sum_exact_for_any_block(data):
    arr = data.draw(square_data(sizes=(8, 16)))
    n = arr.shape[0]
    block = data.draw(st.integers(1, n))
    rect = data.draw(rect_in(n))
    store = LocalPrefixSumStorage.build(arr, block_size=block)
    q = VectorQuery.count(rect)
    assert abs(store.answer(q, counted=False) - q.evaluate_dense(arr)) < 1e-8


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_derived_batch_commutes_with_evaluation(data):
    """T(exact answers) == exact answers of the derived view."""
    arr = data.draw(square_data(sizes=(8, 16)))
    n = arr.shape[0]
    rects = [data.draw(rect_in(n)) for _ in range(data.draw(st.integers(2, 5)))]
    batch = QueryBatch([VectorQuery.count(r) for r in rects])
    storage = WaveletStorage.build(arr, wavelet="haar")
    answers = BatchBiggestB(storage, batch).run()
    derived = DerivedBatch.differences(batch)
    np.testing.assert_allclose(
        derived.apply(answers),
        derived.apply(batch.exact_dense(arr)),
        atol=1e-7,
    )


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_session_penalty_switches_preserve_exactness(data):
    """Any sequence of penalty switches still ends exact, fetching each
    master key exactly once."""
    from repro.core.penalties import CursoredSsePenalty, SsePenalty

    arr = data.draw(square_data(sizes=(8,)))
    rects = [data.draw(rect_in(8)) for _ in range(3)]
    batch = QueryBatch([VectorQuery.count(r) for r in rects])
    storage = WaveletStorage.build(arr, wavelet="haar")
    session = ProgressiveSession(storage, batch)
    storage.reset_stats()
    switches = data.draw(st.integers(0, 3))
    for _ in range(switches):
        session.advance(data.draw(st.integers(0, 10)))
        hp = data.draw(st.integers(0, batch.size - 1))
        session.set_penalty(CursoredSsePenalty(batch.size, high_priority=[hp]))
    answers = session.run_to_completion()
    np.testing.assert_allclose(answers, batch.exact_dense(arr), atol=1e-8)
    assert storage.stats.retrievals == session.plan.num_keys


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_certified_intervals_contain_truth_at_random_depths(data):
    arr = data.draw(square_data(sizes=(8, 16)))
    n = arr.shape[0]
    rects = [data.draw(rect_in(n)) for _ in range(3)]
    batch = QueryBatch([VectorQuery.count(r) for r in rects])
    storage = WaveletStorage.build(arr, wavelet="haar")
    exact = batch.exact_dense(arr)
    ranker = ProgressiveRanker(storage, batch)
    depth = data.draw(st.integers(0, ranker.plan.num_keys))
    ranker.advance(depth)
    iv = ranker.intervals()
    assert np.all(iv[:, 0] <= exact + 1e-7)
    assert np.all(iv[:, 1] >= exact - 1e-7)


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_synopsis_error_vanishes_at_full_budget(data):
    arr = data.draw(square_data(sizes=(8,)))
    rects = [data.draw(rect_in(8)) for _ in range(2)]
    batch = QueryBatch([VectorQuery.count(r) for r in rects])
    storage = WaveletStorage.build(arr, wavelet="haar")
    synopsis = DataSynopsis(storage, budget=arr.size)
    np.testing.assert_allclose(
        synopsis.answer_batch(batch), batch.exact_dense(arr), atol=1e-8
    )


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_all_strategies_agree(data):
    """Five linear strategies, one answer."""
    arr = data.draw(square_data(sizes=(8,)))
    rect = data.draw(rect_in(8))
    q = VectorQuery.count(rect)
    expected = q.evaluate_dense(arr)
    from repro.storage.identity import IdentityStorage
    from repro.storage.prefix_sum import PrefixSumStorage

    strategies = [
        WaveletStorage.build(arr, wavelet="db2"),
        NonstandardWaveletStorage.build(arr, wavelet="db2"),
        PrefixSumStorage.build(arr),
        LocalPrefixSumStorage.build(arr, block_size=4),
        IdentityStorage.build(arr),
    ]
    for storage in strategies:
        assert abs(storage.answer(q, counted=False) - expected) < 1e-7
